#include "engine/batch_runner.h"

#include <unordered_map>
#include <utility>

#include "common/parallel.h"
#include "common/timer.h"
#include "core/block_reorganizer.h"
#include "metrics/trace.h"
#include "sparse/fingerprint.h"
#include "spgemm/algorithm_registry.h"

namespace spnet {
namespace engine {

Request RequestFromQuery(const BatchQuery& query) {
  Request request;
  request.id = query.id;
  request.a = query.a;
  request.b = query.b;
  request.algorithm = query.algorithm;
  request.deadline_ms = query.deadline_ms;
  return request;
}

QueryResult QueryResultFromResponse(const Response& response) {
  QueryResult result;
  result.id = response.id;
  result.status = response.status;
  result.algorithm_used = response.algorithm_used;
  result.plan_cache_hit = response.plan_cache_hit;
  result.fallback_used = response.fallback_used;
  result.wall_ms = response.wall_ms;
  result.sim_ms = response.sim_ms;
  result.gflops = response.gflops;
  result.flops = response.flops;
  result.output_nnz = response.output_nnz;
  return result;
}

BatchReport BatchReportFromExecution(const ExecutionReport& report) {
  BatchReport legacy;
  legacy.results.reserve(report.responses.size());
  for (const Response& response : report.responses) {
    legacy.results.push_back(QueryResultFromResponse(response));
  }
  legacy.wall_ms = report.wall_ms;
  legacy.succeeded = report.succeeded;
  legacy.failed = report.failed;
  legacy.fallbacks = report.fallbacks;
  legacy.deadline_expired = report.deadline_expired;
  legacy.plan_cache_hits = report.plan_cache_hits;
  legacy.plan_cache_misses = report.plan_cache_misses;
  legacy.plan_cache_evictions = report.plan_cache_evictions;
  return legacy;
}

BatchRunner::BatchRunner(BatchOptions options)
    : options_(std::move(options)),
      reorganizer_config_fp_(options_.reorganizer_config.Fingerprint()),
      cache_(options_.shared_plan_cache != nullptr
                 ? options_.shared_plan_cache
                 : std::make_shared<PlanCache>(options_.plan_cache_capacity,
                                               options_.plan_cache_shards,
                                               options_.plan_min_confidence)) {
  core::RegisterCoreAlgorithms();
}

const BatchRunner::AlgorithmEntry& BatchRunner::ResolveAlgorithm(
    const std::string& name) {
  auto it = resolved_.find(name);
  if (it != resolved_.end()) return it->second;

  AlgorithmEntry entry;
  // "reorganizer" honors the runner's configured knobs; everything else
  // (baselines and the ablation variants) resolves through the registry
  // with its registered defaults.
  auto created =
      name == "reorganizer"
          ? core::MakeBlockReorganizer(options_.reorganizer_config)
          : spgemm::AlgorithmRegistry::Global().Create(name);
  if (created.ok()) {
    auto owned = std::move(created).value();
    entry.algorithm = owned.get();
    instances_[name] = std::move(owned);
  } else {
    entry.status = created.status();
  }
  return resolved_.emplace(name, std::move(entry)).first->second;
}

void BatchRunner::RunOne(const Request& request, uint64_t fp_a, uint64_t fp_b,
                         const AlgorithmEntry& primary,
                         const AlgorithmEntry& fallback,
                         spgemm::ExecContext* ctx, Response* response) {
  Timer timer;
  response->id = request.id;
  response->tenant = request.tenant;
  // A request-level deadline (>= 0, where 0 is born expired) wins; the
  // negative sentinel inherits the batch default, whose own <= 0 still
  // means "no deadline".
  const bool inherits = request.deadline_ms < 0.0;
  const double deadline_ms =
      inherits ? options_.default_deadline_ms : request.deadline_ms;
  const bool has_deadline = inherits ? deadline_ms > 0.0 : true;
  const auto expired = [&] {
    return has_deadline && timer.Seconds() * 1e3 >= deadline_ms;
  };
  if (expired()) {
    response->status =
        Status::DeadlineExceeded(request.id + " expired on arrival");
    response->wall_ms = timer.Seconds() * 1e3;
    return;
  }

  // Graceful degradation step 1: a request whose algorithm could not be
  // built (unknown name, invalid reorganizer config) runs on the fallback
  // baseline instead of failing.
  const spgemm::SpGemmAlgorithm* algorithm = primary.algorithm;
  std::string name = request.algorithm;
  if (algorithm == nullptr) {
    if (fallback.algorithm == nullptr ||
        request.algorithm == options_.fallback_algorithm) {
      response->status = primary.status;
      response->wall_ms = timer.Seconds() * 1e3;
      return;
    }
    response->fallback_used = true;
    algorithm = fallback.algorithm;
    name = options_.fallback_algorithm;
  }

  std::shared_ptr<const spgemm::SpGemmPlan> plan;
  while (true) {
    PlanKey key{fp_a, fp_b, name,
                name == "reorganizer" ? reorganizer_config_fp_ : 0};
    plan = cache_->Lookup(key, ctx);
    if (plan != nullptr) {
      response->plan_cache_hit = true;
      break;
    }
    if (expired()) {
      response->status =
          Status::DeadlineExceeded(request.id + " expired before planning");
      response->wall_ms = timer.Seconds() * 1e3;
      return;
    }
    // Worker threads pass a null context into Plan: the ExecContext's
    // TraceRecorder and pool-stats scope are single-threaded, and the
    // engine.* counters above already cover the batch path.
    auto planned =
        algorithm->Plan(*request.a, request.b ? *request.b : *request.a,
                        options_.device, nullptr);
    if (planned.ok()) {
      plan = cache_->Insert(key, std::move(planned).value(), ctx);
      break;
    }
    // Graceful degradation step 2: a failed Plan retries once on the
    // fallback baseline.
    if (!response->fallback_used && fallback.algorithm != nullptr &&
        name != options_.fallback_algorithm) {
      response->fallback_used = true;
      algorithm = fallback.algorithm;
      name = options_.fallback_algorithm;
      continue;
    }
    response->status = planned.status();
    response->wall_ms = timer.Seconds() * 1e3;
    return;
  }
  response->algorithm_used = name;

  if (expired()) {
    response->status =
        Status::DeadlineExceeded(request.id + " expired before simulation");
    response->wall_ms = timer.Seconds() * 1e3;
    return;
  }
  auto measured = spgemm::SimulatePlan(*plan, options_.device, nullptr);
  if (!measured.ok()) {
    response->status = measured.status();
    response->wall_ms = timer.Seconds() * 1e3;
    return;
  }
  response->sim_ms = measured->total_seconds * 1e3;
  response->gflops = measured->Gflops();
  response->flops = measured->flops;
  response->output_nnz = measured->output_nnz;
  response->wall_ms = timer.Seconds() * 1e3;
}

Result<ExecutionReport> BatchRunner::Execute(
    const std::vector<Request>& requests, spgemm::ExecContext* ctx) {
  metrics::ScopedSpan batch_span(spgemm::TraceOf(ctx), "engine:batch");
  Timer timer;
  const int64_t hits_before = cache_->hits();
  const int64_t misses_before = cache_->misses();
  const int64_t evictions_before = cache_->evictions();
  const int64_t rejected_before = cache_->rejected_low_confidence();

  for (size_t i = 0; i < requests.size(); ++i) {
    SPNET_RETURN_IF_ERROR(
        ValidateSchemaVersion(requests[i].schema_version));
    if (requests[i].a == nullptr) {
      return Status::InvalidArgument("request " + std::to_string(i) + " (" +
                                     requests[i].id + ") has no A matrix");
    }
  }
  const AlgorithmEntry& fallback =
      ResolveAlgorithm(options_.fallback_algorithm);
  if (fallback.algorithm == nullptr) {
    return Status(fallback.status.code(),
                  "fallback algorithm '" + options_.fallback_algorithm +
                      "' cannot be built: " + fallback.status.message());
  }
  // Serial prepass: resolve every distinct algorithm once so the parallel
  // phase only reads the memo maps.
  std::vector<const AlgorithmEntry*> primaries(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    primaries[i] = &ResolveAlgorithm(requests[i].algorithm);
  }

  // Fingerprint each distinct matrix once, in parallel — a manifest that
  // repeats one graph N times hashes it once, not N times.
  std::unordered_map<const sparse::CsrMatrix*, uint64_t> fingerprints;
  for (const Request& r : requests) {
    fingerprints.emplace(r.a.get(), 0);
    if (r.b != nullptr) fingerprints.emplace(r.b.get(), 0);
  }
  std::vector<const sparse::CsrMatrix*> distinct;
  distinct.reserve(fingerprints.size());
  for (const auto& [m, fp] : fingerprints) distinct.push_back(m);
  {
    metrics::ScopedSpan span(spgemm::TraceOf(ctx), "engine:fingerprint");
    SPNET_RETURN_IF_ERROR(ParallelFor(
        0, static_cast<int64_t>(distinct.size()), 1,
        [&](int64_t begin, int64_t end, int) {
          for (int64_t i = begin; i < end; ++i) {
            fingerprints[distinct[static_cast<size_t>(i)]] =
                sparse::StructuralFingerprint(
                    *distinct[static_cast<size_t>(i)]);
          }
          return Status::Ok();
        }));
  }

  ExecutionReport report;
  report.responses.resize(requests.size());
  {
    metrics::ScopedSpan span(spgemm::TraceOf(ctx), "engine:run");
    SPNET_RETURN_IF_ERROR(ParallelFor(
        0, static_cast<int64_t>(requests.size()), 1,
        [&](int64_t begin, int64_t end, int) {
          for (int64_t i = begin; i < end; ++i) {
            const auto idx = static_cast<size_t>(i);
            const Request& r = requests[idx];
            const sparse::CsrMatrix* b = r.b ? r.b.get() : r.a.get();
            RunOne(r, fingerprints[r.a.get()], fingerprints[b],
                   *primaries[idx], fallback, ctx, &report.responses[idx]);
          }
          return Status::Ok();
        }));
  }

  for (const Response& r : report.responses) {
    if (r.status.ok()) {
      ++report.succeeded;
    } else if (r.status.code() == StatusCode::kDeadlineExceeded) {
      ++report.deadline_expired;
    } else {
      ++report.failed;
    }
    if (r.fallback_used) ++report.fallbacks;
  }
  report.wall_ms = timer.Seconds() * 1e3;
  report.plan_cache_hits = cache_->hits() - hits_before;
  report.plan_cache_misses = cache_->misses() - misses_before;
  report.plan_cache_evictions = cache_->evictions() - evictions_before;
  report.plan_cache_rejected_low_confidence =
      cache_->rejected_low_confidence() - rejected_before;

  spgemm::AddCounter(ctx, "engine.batch.queries",
                     static_cast<int64_t>(requests.size()));
  spgemm::AddCounter(ctx, "engine.batch.succeeded", report.succeeded);
  spgemm::AddCounter(ctx, "engine.batch.failed", report.failed);
  spgemm::AddCounter(ctx, "engine.batch.fallback", report.fallbacks);
  spgemm::AddCounter(ctx, "engine.batch.deadline_expired",
                     report.deadline_expired);
  spgemm::SetGauge(ctx, "engine.batch.wall_ms", report.wall_ms);
  spgemm::SetGauge(ctx, "engine.plan_cache.size",
                   static_cast<double>(cache_->size()));
  return report;
}

Result<BatchReport> BatchRunner::Run(const std::vector<BatchQuery>& queries,
                                     spgemm::ExecContext* ctx) {
  std::vector<Request> requests;
  requests.reserve(queries.size());
  for (const BatchQuery& query : queries) {
    requests.push_back(RequestFromQuery(query));
  }
  SPNET_ASSIGN_OR_RETURN(const ExecutionReport report,
                         Execute(requests, ctx));
  return BatchReportFromExecution(report);
}

}  // namespace engine
}  // namespace spnet
