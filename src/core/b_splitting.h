#ifndef SPNET_CORE_B_SPLITTING_H_
#define SPNET_CORE_B_SPLITTING_H_

#include <cstdint>
#include <vector>

#include "core/reorganizer_config.h"
#include "gpusim/device_spec.h"
#include "sparse/types.h"
#include "spgemm/workload_model.h"

namespace spnet {
namespace spgemm {
struct ExecContext;
}  // namespace spgemm

namespace core {

/// One dominator pair split into power-of-two column fragments. The
/// fragments reference contiguous sub-ranges of the dominator column of A
/// (the paper rewrites the copied column's pointer values to carve these
/// ranges); each fragment multiplies its sub-column with the *whole*
/// B row.
struct SplitVector {
  sparse::Index pair = 0;          ///< original column/row pair id
  int factor = 1;                  ///< number of fragments (2^n)
  /// factor+1 offsets into the column's element range; fragment f covers
  /// [offsets[f], offsets[f+1]).
  std::vector<int64_t> offsets;
};

/// The complete B-Splitting transformation of one multiplication.
struct SplitPlan {
  std::vector<SplitVector> vectors;
  int64_t total_fragments = 0;
  /// Elements copied into the temporary matrices A'/B' — the host-side
  /// preprocessing cost the paper includes in its timings.
  int64_t copied_elements = 0;

  /// The paper's mapper array: fragment id -> original pair id, in
  /// dispatch order.
  std::vector<sparse::Index> BuildMapper() const;
};

/// Chooses each dominator's splitting factor and fragment boundaries.
///
/// Heuristic (Section IV-C1): fragments must outnumber the SMs (factor of
/// at least the next power of two above 2x num_sms) while every fragment
/// keeps at least one column element; `config.splitting_factor_override`
/// forces a uniform factor for the Figure 11/12 sweeps.
///
/// With a context, records a "b-splitting" span, splitting.* gauges
/// (fragments, copied elements, split vectors) and a
/// splitting.factor histogram (one observation per split vector).
SplitPlan BuildSplitPlan(const spgemm::Workload& workload,
                         const std::vector<sparse::Index>& dominators,
                         const ReorganizerConfig& config,
                         const gpusim::DeviceSpec& device,
                         spgemm::ExecContext* ctx = nullptr);

}  // namespace core
}  // namespace spnet

#endif  // SPNET_CORE_B_SPLITTING_H_
