// Model-calibration report: evaluates the simulator's execution-model
// parameters against the paper's headline relative results and prints a
// target-vs-measured table. With --sweep, performs a greedy coordinate
// search over the model parameters and reports the best setting found
// (used offline to pick the DeviceSpec defaults; see EXPERIMENTS.md).
//
// Flags: --scale (default 0.12), --sweep, --rounds=N, --seed,
// --json_out=<path> (machine-readable BENCH_calibration.json).

#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/block_reorganizer.h"
#include "core/suite.h"
#include "metrics/report.h"
#include "spgemm/algorithm.h"

namespace spnet {
namespace {

// Representative subset: 7 quasi-regular + 5 skewed.
const char* kDatasets[] = {"filter3D",   "harbor",     "QCD",
                           "mario002",   "patents_main", "scircuit",
                           "majorbasis", "youtube",    "as-caida",
                           "loc-gowalla", "slashDot",  "epinions"};

struct Metrics {
  // Geometric means vs row-product (Figure 8 family).
  double outer = 0, cusparse = 0, cusp = 0, bhsparse = 0, mkl = 0, br = 0;
  // Geometric means vs outer-product (Figure 10 family).
  double limiting = 0, splitting = 0, gathering = 0, combined = 0;
};

// Paper targets for the same quantities.
const Metrics kTargets = {0.95, 0.29, 0.22, 0.55, 0.48, 1.43,
                          1.05, 1.05, 1.28, 1.51};

Metrics Evaluate(const std::vector<sparse::CsrMatrix>& mats,
                 const gpusim::DeviceSpec& device) {
  const auto algorithms = core::MakeAllAlgorithms();
  const auto ablation = core::MakeAblationSuite();

  std::map<std::string, std::vector<double>> vs_row;
  std::map<std::string, std::vector<double>> vs_outer;
  for (const auto& a : mats) {
    double row_seconds = 0.0;
    double outer_seconds = 0.0;
    for (const auto& alg : algorithms) {
      auto m = spgemm::Measure(*alg, a, a, device);
      SPNET_CHECK(m.ok()) << m.status().ToString();
      if (alg->name() == "row-product") row_seconds = m->total_seconds;
      if (alg->name() == "outer-product") outer_seconds = m->total_seconds;
      vs_row[alg->name()].push_back(row_seconds / m->total_seconds);
    }
    for (const auto& alg : ablation) {
      auto m = spgemm::Measure(*alg, a, a, device);
      SPNET_CHECK(m.ok()) << m.status().ToString();
      vs_outer[alg->name()].push_back(outer_seconds / m->total_seconds);
    }
  }
  Metrics out;
  out.outer = metrics::GeometricMean(vs_row["outer-product"]);
  out.cusparse = metrics::GeometricMean(vs_row["cuSPARSE"]);
  out.cusp = metrics::GeometricMean(vs_row["CUSP"]);
  out.bhsparse = metrics::GeometricMean(vs_row["bhSPARSE"]);
  out.mkl = metrics::GeometricMean(vs_row["MKL"]);
  out.br = metrics::GeometricMean(vs_row["Block-Reorganizer"]);
  out.limiting = metrics::GeometricMean(vs_outer["B-Limiting"]);
  out.splitting = metrics::GeometricMean(vs_outer["B-Splitting"]);
  out.gathering = metrics::GeometricMean(vs_outer["B-Gathering"]);
  out.combined = metrics::GeometricMean(vs_outer["Block-Reorganizer"]);
  return out;
}

double LogErr(double x, double target) {
  if (x <= 0) return 10.0;
  const double e = std::log(x / target);
  return e * e;
}

double Loss(const Metrics& m) {
  // The headline (Block Reorganizer) and the technique decomposition are
  // weighted above the library surrogates.
  return 3.0 * LogErr(m.br, kTargets.br) + 2.0 * LogErr(m.outer, kTargets.outer) +
         LogErr(m.cusparse, kTargets.cusparse) + LogErr(m.cusp, kTargets.cusp) +
         LogErr(m.bhsparse, kTargets.bhsparse) + LogErr(m.mkl, kTargets.mkl) +
         2.0 * LogErr(m.limiting, kTargets.limiting) +
         2.0 * LogErr(m.splitting, kTargets.splitting) +
         2.0 * LogErr(m.gathering, kTargets.gathering) +
         2.0 * LogErr(m.combined, kTargets.combined);
}

metrics::Table MetricsTable(const Metrics& m) {
  metrics::Table t({"metric", "paper", "model"});
  auto row = [&](const char* name, double target, double v) {
    t.AddRow({name, metrics::FormatDouble(target), metrics::FormatDouble(v)});
  };
  row("outer-product / row-product", kTargets.outer, m.outer);
  row("cuSPARSE / row-product", kTargets.cusparse, m.cusparse);
  row("CUSP / row-product", kTargets.cusp, m.cusp);
  row("bhSPARSE / row-product", kTargets.bhsparse, m.bhsparse);
  row("MKL / row-product", kTargets.mkl, m.mkl);
  row("Block-Reorganizer / row-product", kTargets.br, m.br);
  row("B-Limiting / outer", kTargets.limiting, m.limiting);
  row("B-Splitting / outer", kTargets.splitting, m.splitting);
  row("B-Gathering / outer", kTargets.gathering, m.gathering);
  row("combined / outer", kTargets.combined, m.combined);
  return t;
}

void Print(const Metrics& m) {
  std::fputs(MetricsTable(m).ToString().c_str(), stdout);
}

struct Knob {
  const char* name;
  double gpusim::DeviceSpec::* field;
  std::vector<double> values;
};

int Run(int argc, char** argv) {
  FlagParser flags;
  SPNET_CHECK(flags.Parse(argc, argv).ok());
  const double scale = flags.GetDouble("scale", 0.12);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const bool sweep = flags.GetBool("sweep", false);
  const int rounds = static_cast<int>(flags.GetInt("rounds", 2));

  std::vector<sparse::CsrMatrix> mats;
  for (const char* name : kDatasets) {
    auto spec = datasets::FindDataset(name);
    SPNET_CHECK(spec.ok());
    auto m = datasets::Materialize(*spec, scale, seed);
    SPNET_CHECK(m.ok());
    mats.push_back(std::move(m).value());
  }

  // This bench owns its flag parsing (it predates BenchOptions); build an
  // options record just for the json writer's run provenance.
  bench::BenchOptions options;
  options.scale = scale;
  options.seed = seed;
  options.json_out = flags.GetString("json_out", "");
  bench::BenchJson json("calibration", "calibration report", options);

  gpusim::DeviceSpec device = gpusim::DeviceSpec::TitanXp();
  Metrics current = Evaluate(mats, device);
  std::printf("== Calibration report (Titan Xp model, scale %.2f) ==\n",
              scale);
  Print(current);
  std::printf("loss = %.4f\n", Loss(current));
  json.AddTable("paper_vs_model", MetricsTable(current));
  if (!sweep) {
    json.WriteIfRequested();
    return 0;
  }

  std::vector<Knob> knobs = {
      {"block_dispatch_cycles", &gpusim::DeviceSpec::block_dispatch_cycles,
       {2, 4, 8, 12, 20}},
      {"store_backpressure_cycles",
       &gpusim::DeviceSpec::store_backpressure_cycles,
       {50, 100, 200, 300, 500}},
      {"atomic_cycles", &gpusim::DeviceSpec::atomic_cycles, {10, 25, 40, 60}},
      {"block_inflight_bytes", &gpusim::DeviceSpec::block_inflight_bytes,
       {49152, 98304, 196608, 393216}},
      {"cpi", &gpusim::DeviceSpec::cpi, {12, 18, 24, 36, 48}},
      {"block_startup_cycles", &gpusim::DeviceSpec::block_startup_cycles,
       {100, 200, 300, 600, 1000}},
      {"max_latency_hiding", &gpusim::DeviceSpec::max_latency_hiding,
       {4, 8, 16}},
      {"max_atomic_contention", &gpusim::DeviceSpec::max_atomic_contention,
       {8, 16, 32}},
      {"latency_hiding_base", &gpusim::DeviceSpec::latency_hiding_base,
       {0, 2, 4, 8}},
      {"latency_hiding_per_warp", &gpusim::DeviceSpec::latency_hiding_per_warp,
       {0.5, 1, 2, 4}},
      {"store_transaction_bytes", &gpusim::DeviceSpec::store_transaction_bytes,
       {16, 32, 64, 128}},
      {"lsu_bw_bytes_per_sm", &gpusim::DeviceSpec::lsu_bw_bytes_per_sm,
       {32, 64, 128, 256}},
  };

  // Random restarts explore the landscape before the greedy refinement.
  const int random_probes = static_cast<int>(flags.GetInt("random", 0));
  double best_loss = Loss(current);
  if (random_probes > 0) {
    Rng rng(seed);
    gpusim::DeviceSpec best_device = device;
    for (int probe = 0; probe < random_probes; ++probe) {
      gpusim::DeviceSpec candidate = device;
      for (const Knob& knob : knobs) {
        candidate.*(knob.field) =
            knob.values[rng.NextBounded(knob.values.size())];
      }
      const double loss = Loss(Evaluate(mats, candidate));
      if (loss < best_loss) {
        best_loss = loss;
        best_device = candidate;
        std::printf("probe %d: loss %.4f\n", probe, loss);
        std::fflush(stdout);
      }
    }
    device = best_device;
  }

  for (int round = 0; round < rounds; ++round) {
    for (const Knob& knob : knobs) {
      const double original = device.*(knob.field);
      double best_value = original;
      for (double v : knob.values) {
        device.*(knob.field) = v;
        const double loss = Loss(Evaluate(mats, device));
        if (loss < best_loss) {
          best_loss = loss;
          best_value = v;
        }
      }
      device.*(knob.field) = best_value;
      std::printf("round %d: %s = %g (loss %.4f)\n", round, knob.name,
                  device.*(knob.field), best_loss);
      std::fflush(stdout);
    }
  }
  std::printf("\n== Best parameters ==\n");
  for (const Knob& knob : knobs) {
    std::printf("%s = %g\n", knob.name, device.*(knob.field));
  }
  const Metrics tuned = Evaluate(mats, device);
  Print(tuned);
  json.AddTable("paper_vs_model_tuned", MetricsTable(tuned));
  json.WriteIfRequested();
  return 0;
}

}  // namespace
}  // namespace spnet

int main(int argc, char** argv) { return spnet::Run(argc, argv); }
