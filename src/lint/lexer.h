#ifndef SPNET_LINT_LEXER_H_
#define SPNET_LINT_LEXER_H_

#include <string>
#include <vector>

namespace spnet {
namespace lint {

/// Token categories the rule engine needs. The lexer is a real C++
/// tokenizer for everything that matters to lint rules — comments, string
/// and character literals (including raw strings), preprocessor
/// directives — so rules never see a `new` inside a string or a
/// suppression marker inside code. It is deliberately NOT a full C++
/// grammar: keywords arrive as identifiers and operators as punctuation;
/// rules pattern-match token runs instead of parsing.
enum class TokenKind {
  kIdentifier,  ///< identifiers and keywords, e.g. `delete`, `ParallelFor`
  kNumber,      ///< numeric literals (pp-number, loosely)
  kString,      ///< "..." and R"tag(...)tag" with any encoding prefix
  kCharacter,   ///< '...'
  kPunct,       ///< operators and punctuation, longest-match (`::`, `->`)
  kComment,     ///< // and /* */ bodies, text excludes the delimiters
  kPreproc,     ///< a whole directive line: `#include <map>`, `#define ...`
};

struct Token {
  TokenKind kind;
  std::string text;
  int line = 1;  ///< 1-based line of the token's first character
  /// For multi-line tokens (block comments, raw strings, continued
  /// directives): the line of the last character. Equals `line` otherwise.
  int end_line = 1;
};

/// Tokenizes `source`. Never fails: unterminated literals and comments
/// lex as one token running to end of input (the linter favors best-effort
/// diagnostics over rejecting a file a compiler already accepted or a
/// fixture meant to be broken).
std::vector<Token> Tokenize(const std::string& source);

}  // namespace lint
}  // namespace spnet

#endif  // SPNET_LINT_LEXER_H_
