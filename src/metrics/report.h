#ifndef SPNET_METRICS_REPORT_H_
#define SPNET_METRICS_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace spnet {
namespace metrics {

/// Plain-text table builder used by every benchmark binary to print the
/// paper's rows/series in a uniform, diff-friendly format.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; cell count must match the header.
  void AddRow(std::vector<std::string> row);

  /// Renders with aligned columns.
  std::string ToString() const;

  /// Renders as CSV (for plotting scripts).
  std::string ToCsv() const;

  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// "2.7M", "148M", "62.5k" — the compact counts used in the paper tables.
std::string FormatCount(int64_t value);

/// Fixed-precision double ("1.43").
std::string FormatDouble(double value, int precision = 2);

/// Geometric mean of positive values (0 if empty); the right mean for
/// speedup ratios.
double GeometricMean(const std::vector<double>& values);

/// Arithmetic mean (0 if empty).
double ArithmeticMean(const std::vector<double>& values);

}  // namespace metrics
}  // namespace spnet

#endif  // SPNET_METRICS_REPORT_H_
