#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/block_reorganizer.h"
#include "graph/analytics.h"
#include "sparse/operations.h"
#include "tests/test_util.h"

namespace spnet {
namespace graph {
namespace {

using sparse::CooMatrix;
using sparse::CsrMatrix;
using sparse::Index;

/// Undirected cycle 0-1-2-...-(n-1)-0.
CsrMatrix Cycle(Index n) {
  CooMatrix coo(n, n);
  for (Index i = 0; i < n; ++i) {
    coo.Add(i, (i + 1) % n, 1.0);
    coo.Add((i + 1) % n, i, 1.0);
  }
  coo.SortAndCombine();
  return std::move(CsrMatrix::FromCoo(coo)).value();
}

/// Complete graph on n nodes (no self loops).
CsrMatrix Complete(Index n) {
  CooMatrix coo(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) {
      if (i != j) coo.Add(i, j, 1.0);
    }
  }
  return std::move(CsrMatrix::FromCoo(coo)).value();
}

core::BlockReorganizerSpGemm& Reorganizer() {
  // Leaked on purpose: shared across tests, destruction order irrelevant.
  static core::BlockReorganizerSpGemm* alg =
      new core::BlockReorganizerSpGemm();  // spnet-lint: allow(raw-new-delete)
  return *alg;
}

TEST(PageRankTest, UniformOnSymmetricCycle) {
  const CsrMatrix a = Cycle(10);
  auto pr = PageRank(a);
  ASSERT_TRUE(pr.ok());
  double sum = 0.0;
  for (double s : pr->scores) {
    EXPECT_NEAR(s, 0.1, 1e-6);
    sum += s;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_LT(pr->residual, 1e-9);
}

TEST(PageRankTest, HubOutranksLeaves) {
  // Star: all leaves point to node 0 and back.
  CooMatrix coo(9, 9);
  for (Index i = 1; i < 9; ++i) {
    coo.Add(i, 0, 1.0);
    coo.Add(0, i, 1.0);
  }
  auto a = CsrMatrix::FromCoo(coo);
  auto pr = PageRank(*a);
  ASSERT_TRUE(pr.ok());
  for (Index i = 1; i < 9; ++i) {
    EXPECT_GT(pr->scores[0], pr->scores[static_cast<size_t>(i)]);
  }
}

TEST(PageRankTest, DanglingNodesConserveMass) {
  // Node 2 has no out-edges.
  CooMatrix coo(3, 3);
  coo.Add(0, 1, 1.0);
  coo.Add(1, 2, 1.0);
  auto a = CsrMatrix::FromCoo(coo);
  auto pr = PageRank(*a);
  ASSERT_TRUE(pr.ok());
  const double sum =
      std::accumulate(pr->scores.begin(), pr->scores.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(PageRankTest, RejectsBadInput) {
  const CsrMatrix rect = testing_util::RandomMatrix(4, 5, 0.5, 1);
  EXPECT_FALSE(PageRank(rect).ok());
  PageRankOptions bad;
  bad.damping = 1.5;
  EXPECT_FALSE(PageRank(Cycle(4), bad).ok());
}

TEST(CosineSimilarityTest, IdenticalRowsScoreOne) {
  // Rows 0 and 1 identical; row 2 orthogonal.
  CooMatrix coo(3, 4);
  coo.Add(0, 0, 2.0);
  coo.Add(0, 1, 1.0);
  coo.Add(1, 0, 4.0);  // same direction, different magnitude
  coo.Add(1, 1, 2.0);
  coo.Add(2, 3, 5.0);
  auto a = CsrMatrix::FromCoo(coo);
  auto s = CosineSimilarity(*a, Reorganizer(), 3);
  ASSERT_TRUE(s.ok());
  // similarity(0, 1) == 1; no entry between 0/1 and 2; no diagonal.
  const sparse::SpanView row0 = s->Row(0);
  ASSERT_EQ(row0.size, 1);
  EXPECT_EQ(row0.indices[0], 1);
  EXPECT_NEAR(row0.values[0], 1.0, 1e-9);
  EXPECT_EQ(s->RowNnz(2), 0);
}

TEST(CosineSimilarityTest, TopKBounds) {
  const CsrMatrix a = testing_util::SkewedMatrix(60, 40, 31);
  auto s = CosineSimilarity(a, Reorganizer(), 5);
  ASSERT_TRUE(s.ok());
  for (Index r = 0; r < s->rows(); ++r) {
    EXPECT_LE(s->RowNnz(r), 5);
  }
  EXPECT_FALSE(CosineSimilarity(a, Reorganizer(), 0).ok());
}

TEST(KHopTest, CycleReach) {
  const CsrMatrix a = Cycle(12);
  auto one = KHopReachability(a, Reorganizer(), 1);
  auto three = KHopReachability(a, Reorganizer(), 3);
  ASSERT_TRUE(one.ok() && three.ok());
  // 1 hop: self + 2 neighbors; 3 hops: self + 3 on each side.
  EXPECT_EQ(one->RowNnz(0), 3);
  EXPECT_EQ(three->RowNnz(0), 7);
  EXPECT_FALSE(KHopReachability(a, Reorganizer(), 0).ok());
}

TEST(KHopTest, ReachabilityIsMonotone) {
  const CsrMatrix a = testing_util::SkewedMatrix(80, 40, 33);
  auto two = KHopReachability(a, Reorganizer(), 2);
  auto four = KHopReachability(a, Reorganizer(), 4);
  ASSERT_TRUE(two.ok() && four.ok());
  EXPECT_GE(four->nnz(), two->nnz());
}

TEST(TriangleTest, KnownCounts) {
  auto cycle = CountTriangles(Cycle(8), Reorganizer());
  ASSERT_TRUE(cycle.ok());
  EXPECT_EQ(cycle.value(), 0);
  // K4 has C(4,3) = 4 triangles; K5 has 10.
  auto k4 = CountTriangles(Complete(4), Reorganizer());
  auto k5 = CountTriangles(Complete(5), Reorganizer());
  ASSERT_TRUE(k4.ok() && k5.ok());
  EXPECT_EQ(k4.value(), 4);
  EXPECT_EQ(k5.value(), 10);
}

TEST(CommonNeighborTest, PredictsCycleClosure) {
  // Path 0-1-2: nodes 0 and 2 share neighbor 1 and are not adjacent.
  CooMatrix coo(3, 3);
  coo.Add(0, 1, 1.0);
  coo.Add(1, 0, 1.0);
  coo.Add(1, 2, 1.0);
  coo.Add(2, 1, 1.0);
  auto a = CsrMatrix::FromCoo(coo);
  auto scores = CommonNeighborScores(*a, Reorganizer(), 2);
  ASSERT_TRUE(scores.ok());
  const sparse::SpanView row0 = scores->Row(0);
  ASSERT_EQ(row0.size, 1);
  EXPECT_EQ(row0.indices[0], 2);
  EXPECT_DOUBLE_EQ(row0.values[0], 1.0);
}

TEST(CommonNeighborTest, ExcludesExistingEdges) {
  const CsrMatrix a = Complete(6);
  auto scores = CommonNeighborScores(a, Reorganizer(), 5);
  ASSERT_TRUE(scores.ok());
  // Complete graph: every pair already adjacent, nothing to predict.
  EXPECT_EQ(scores->nnz(), 0);
}


TEST(BfsTest, CycleLevels) {
  const CsrMatrix a = Cycle(8);
  auto levels = BfsLevels(a, 0);
  ASSERT_TRUE(levels.ok());
  EXPECT_EQ((*levels)[0], 0);
  EXPECT_EQ((*levels)[1], 1);
  EXPECT_EQ((*levels)[7], 1);
  EXPECT_EQ((*levels)[4], 4);  // farthest point of an 8-cycle
}

TEST(BfsTest, UnreachableIsMinusOne) {
  CooMatrix coo(4, 4);
  coo.Add(0, 1, 1.0);
  auto a = CsrMatrix::FromCoo(coo);
  auto levels = BfsLevels(*a, 0);
  ASSERT_TRUE(levels.ok());
  EXPECT_EQ((*levels)[1], 1);
  EXPECT_EQ((*levels)[2], -1);
  EXPECT_EQ((*levels)[3], -1);
  EXPECT_FALSE(BfsLevels(*a, 9).ok());
}

TEST(ConnectedComponentsTest, TwoIslands) {
  CooMatrix coo(6, 6);
  coo.Add(0, 1, 1.0);  // directed edge still links the component
  coo.Add(2, 1, 1.0);
  coo.Add(3, 4, 1.0);
  coo.Add(4, 5, 1.0);
  auto a = CsrMatrix::FromCoo(coo);
  auto labels = ConnectedComponents(*a);
  ASSERT_TRUE(labels.ok());
  EXPECT_EQ((*labels)[0], 0);
  EXPECT_EQ((*labels)[1], 0);
  EXPECT_EQ((*labels)[2], 0);
  EXPECT_EQ((*labels)[3], 3);
  EXPECT_EQ((*labels)[4], 3);
  EXPECT_EQ((*labels)[5], 3);
}

TEST(ConnectedComponentsTest, AgreesWithBfsOnUndirectedGraph) {
  const CsrMatrix a = Cycle(20);
  auto labels = ConnectedComponents(a);
  auto levels = BfsLevels(a, 0);
  ASSERT_TRUE(labels.ok() && levels.ok());
  for (size_t i = 0; i < labels->size(); ++i) {
    EXPECT_EQ((*labels)[i], 0);
    EXPECT_GE((*levels)[i], 0);
  }
}

TEST(JaccardTest, TriangleNeighborhoods) {
  // Triangle 0-1-2: J(u, v) for an edge = |common|/|union| = 1/3
  // (N(0)={1,2}, N(1)={0,2}: common {2}, union {0,1,2}).
  const CsrMatrix k3 = Complete(3);
  auto j = JaccardSimilarity(k3, Reorganizer());
  ASSERT_TRUE(j.ok());
  for (Index u = 0; u < 3; ++u) {
    const sparse::SpanView row = j->Row(u);
    for (sparse::Offset k = 0; k < row.size; ++k) {
      EXPECT_NEAR(row.values[k], 1.0 / 3.0, 1e-9);
    }
  }
}

TEST(JaccardTest, ValuesBounded) {
  const CsrMatrix a = testing_util::SkewedMatrix(60, 40, 35);
  auto j = JaccardSimilarity(a, Reorganizer());
  ASSERT_TRUE(j.ok());
  for (sparse::Value v : j->values()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
}

}  // namespace
}  // namespace graph
}  // namespace spnet
