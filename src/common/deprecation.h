#ifndef SPNET_COMMON_DEPRECATION_H_
#define SPNET_COMMON_DEPRECATION_H_

/// Marks a legacy entry point that has a preferred replacement (named in
/// `msg`). Expands to [[deprecated(msg)]] only when the build opts in with
/// -DSPNET_ENABLE_DEPRECATION_WARNINGS: the repo compiles with -Werror in
/// CI, so an unconditional attribute would turn every not-yet-migrated
/// internal caller into a build break instead of a migration signal.
#if defined(SPNET_ENABLE_DEPRECATION_WARNINGS)
#define SPNET_DEPRECATED(msg) [[deprecated(msg)]]
#else
#define SPNET_DEPRECATED(msg)
#endif

#endif  // SPNET_COMMON_DEPRECATION_H_
