// Batched query engine bench: end-to-end wall-clock for a manifest of
// repeated-structure spGEMM queries with and without the plan cache.
//
// The workload models production traffic against a small set of hot
// graphs: each of three power-law datasets is queried `--repeat` times
// with the Block Reorganizer (same matrix structure every time — exactly
// the situation where planning work is amortizable). Three passes run:
//
//   no-cache   plan cache disabled; every query re-runs the full Block
//              Reorganizer planning pipeline
//   cold       fresh cache; one planning miss per distinct structure,
//              the remaining repeats hit
//   warm       same runner again; every query hits
//
// The headline number is the end-to-end batch wall-clock: warm (and cold,
// for repeat > 1) must beat no-cache, because a hit replaces
// classification + B-Splitting + B-Gathering + B-Limiting with one hash
// lookup.
//
// Flags: --scale (default 0.05), --seed, --device, --csv, --threads,
// --repeat (queries per dataset, default 8),
// --json_out=BENCH_engine_batch.json.

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "engine/batch_runner.h"
#include "metrics/report.h"
#include "sparse/csr_matrix.h"
#include "spgemm/exec_context.h"

namespace spnet {
namespace {

std::vector<engine::Request> BuildWorkload(const bench::BenchOptions& options,
                                           int64_t repeat) {
  // Three skewed SNAP stand-ins — the family whose planning cost
  // (dominator classification + splitting) dominates end-to-end latency.
  const std::vector<std::string> names = {"as-caida", "emailEnron",
                                          "epinions"};
  std::vector<engine::Request> requests;
  for (const std::string& name : names) {
    auto matrix = std::make_shared<const sparse::CsrMatrix>(
        bench::LoadDataset(name, options));
    for (int64_t k = 0; k < repeat; ++k) {
      auto request = engine::RequestBuilder()
                         .Id(name + "#" + std::to_string(k))
                         .Algorithm("reorganizer")
                         .OperandA(matrix)
                         .Build();
      SPNET_CHECK(request.ok()) << request.status().ToString();
      requests.push_back(std::move(request).value());
    }
  }
  return requests;
}

engine::ExecutionReport RunPass(engine::BatchRunner* runner,
                                const std::vector<engine::Request>& requests,
                                spgemm::ExecContext* ctx) {
  auto report = runner->Execute(requests, ctx);
  SPNET_CHECK(report.ok()) << report.status().ToString();
  SPNET_CHECK(report->failed == 0) << "batch pass had failing queries";
  return std::move(report).value();
}

int Run(int argc, char** argv) {
  bench::BenchOptions options = bench::BenchOptions::FromArgs(argc, argv);
  FlagParser flags;
  SPNET_CHECK(flags.Parse(argc, argv).ok());
  const int64_t repeat = flags.GetInt("repeat", 8);

  const std::vector<engine::Request> queries = BuildWorkload(options, repeat);

  spgemm::ExecContext ctx;

  engine::BatchOptions no_cache;
  no_cache.plan_cache_capacity = 0;
  no_cache.device = options.Device();
  engine::BatchRunner uncached(no_cache);

  engine::BatchOptions cached;
  cached.plan_cache_capacity = 64;
  cached.device = options.Device();
  engine::BatchRunner runner(cached);

  struct Pass {
    const char* name;
    engine::ExecutionReport report;
  };
  std::vector<Pass> passes;
  passes.push_back({"no-cache", RunPass(&uncached, queries, &ctx)});
  passes.push_back({"cold", RunPass(&runner, queries, &ctx)});
  passes.push_back({"warm", RunPass(&runner, queries, &ctx)});

  metrics::Table table({"pass", "queries", "plan hits", "plan misses",
                        "evictions", "wall ms", "speedup vs no-cache"});
  const double baseline_ms = passes[0].report.wall_ms;
  for (const Pass& pass : passes) {
    table.AddRow(
        {pass.name, std::to_string(queries.size()),
         std::to_string(pass.report.plan_cache_hits),
         std::to_string(pass.report.plan_cache_misses),
         std::to_string(pass.report.plan_cache_evictions),
         metrics::FormatDouble(pass.report.wall_ms, 2),
         metrics::FormatDouble(pass.report.wall_ms > 0.0
                                   ? baseline_ms / pass.report.wall_ms
                                   : 0.0,
                               2)});
  }

  std::printf("== batched query engine: plan-cache amortization "
              "(%zu queries, %lld repeats per structure) ==\n",
              queries.size(), static_cast<long long>(repeat));
  std::fputs(options.csv ? table.ToCsv().c_str() : table.ToString().c_str(),
             stdout);

  bench::BenchJson json("engine_batch", "batched query engine", options);
  json.AddTable("plan_cache_amortization", table);
  json.AttachContext(&ctx);
  json.WriteIfRequested();
  return 0;
}

}  // namespace
}  // namespace spnet

int main(int argc, char** argv) { return spnet::Run(argc, argv); }
