#ifndef SPNET_CORE_BLOCK_REORGANIZER_H_
#define SPNET_CORE_BLOCK_REORGANIZER_H_

#include <cstdint>
#include <string>

#include "core/b_gathering.h"
#include "core/b_splitting.h"
#include "core/reorganizer_config.h"
#include "core/workload_classifier.h"
#include "spgemm/algorithm.h"

namespace spnet {
namespace core {

/// Summary of one Block Reorganizer pre-process, matching the numbers the
/// paper walks through for YouTube in Section IV-E (713 dominators,
/// 362,736 low performers, 12,657 limited rows, ...).
struct ReorganizerReport {
  int64_t nonzero_pairs = 0;
  int64_t dominators = 0;
  int64_t low_performers = 0;
  int64_t normals = 0;
  int64_t limited_rows = 0;
  int64_t fragments = 0;        ///< expansion blocks created by B-Splitting
  int64_t combined_blocks = 0;  ///< blocks created by B-Gathering
  int64_t gathered_pairs = 0;   ///< micro-blocks packed into them
  int64_t dominator_threshold = 0;
  int64_t limit_row_threshold = 0;
};

/// The paper's contribution: outer-product spGEMM with the Block
/// Reorganizer optimization pass (workload classification + B-Splitting +
/// B-Gathering for expansion, B-Limiting for merge). Each technique can be
/// toggled via ReorganizerConfig for the Figure 10 ablation.
class BlockReorganizerSpGemm : public spgemm::SpGemmAlgorithm {
 public:
  explicit BlockReorganizerSpGemm(ReorganizerConfig config = {},
                                  std::string display_name = "")
      : config_(config), name_(std::move(display_name)) {}

  std::string name() const override {
    return name_.empty() ? "Block-Reorganizer" : name_;
  }

  const ReorganizerConfig& config() const { return config_; }

  /// Runs only the pre-process and reports the bin populations.
  Result<ReorganizerReport> Analyze(const sparse::CsrMatrix& a,
                                    const sparse::CsrMatrix& b,
                                    const gpusim::DeviceSpec& device,
                                    spgemm::ExecContext* ctx = nullptr) const;

 protected:
  Result<spgemm::SpGemmPlan> PlanImpl(const sparse::CsrMatrix& a,
                                      const sparse::CsrMatrix& b,
                                      const gpusim::DeviceSpec& device,
                                      spgemm::ExecContext* ctx) const override;

  /// Host execution that genuinely routes the expansion through the split
  /// fragments and the mapper array, so the transformation logic is
  /// validated end to end (tests compare against ReferenceSpGemm).
  Result<sparse::CsrMatrix> ComputeImpl(const sparse::CsrMatrix& a,
                                        const sparse::CsrMatrix& b,
                                        spgemm::ExecContext* ctx) const override;

 private:
  /// Output of the configured planning tier: the workload feeding kernel
  /// construction, the classification, and how much of the workload is
  /// exactly known (1.0 for the exact tier).
  struct Prepared {
    spgemm::Workload workload;
    Classification classes;
    double confidence = 1.0;
  };

  /// Runs the configured planning tier for Plan/Analyze: exact
  /// precalculation, or the sampled estimator with per-entry exact
  /// fallback; kAuto rebuilds exactly when the post-fallback confidence
  /// lands below `min_plan_confidence`.
  Prepared PrepareWorkload(const sparse::CsrMatrix& a,
                           const sparse::CsrMatrix& b,
                           spgemm::ExecContext* ctx) const;

  /// Tiered classification for Compute: scheduling classes may come from
  /// estimates, but the caller's `exact` workload always drives buffer
  /// sizes and expansion ranges (an estimate must never move a cursor).
  Classification ClassifyTiered(const sparse::CsrMatrix& a,
                                const sparse::CsrMatrix& b,
                                const spgemm::Workload& exact,
                                spgemm::ExecContext* ctx) const;

  /// Kernel construction shared by both tiers.
  spgemm::SpGemmPlan BuildPlanKernels(const spgemm::Workload& workload,
                                      const Classification& classes,
                                      const gpusim::DeviceSpec& device,
                                      int64_t nnz_a,
                                      spgemm::ExecContext* ctx) const;

  /// The classify/split/gather/expand/merge pipeline on inputs as given;
  /// ComputeImpl wraps it with the config's reorder pre-pass (permute A's
  /// rows and B's columns, compute, invert on the output).
  Result<sparse::CsrMatrix> ComputeCore(const sparse::CsrMatrix& a,
                                        const sparse::CsrMatrix& b,
                                        spgemm::ExecContext* ctx) const;

  ReorganizerConfig config_;
  std::string name_;
};

/// Convenience factory used by the benchmark suite and the CLI. Validates
/// `config` first (see ReorganizerConfig::Validate) and refuses to build
/// an algorithm around nonsense knobs.
Result<std::unique_ptr<spgemm::SpGemmAlgorithm>> MakeBlockReorganizer(
    ReorganizerConfig config = {}, std::string display_name = "");

/// Registers the Block Reorganizer family ("reorganizer" plus the
/// single-technique ablation variants "reorganizer-limiting",
/// "reorganizer-splitting", "reorganizer-gathering", the sampled
/// planning tier "reorganizer-estimated", and the reordering pre-pass
/// ablations "reorganizer-reorder-degree" / "-rcm" / "-cluster") in
/// spgemm::AlgorithmRegistry::Global(). Idempotent; call before querying
/// the registry for core-layer algorithms.
void RegisterCoreAlgorithms();

}  // namespace core
}  // namespace spnet

#endif  // SPNET_CORE_BLOCK_REORGANIZER_H_
