#include "core/b_limiting.h"

namespace spnet {
namespace core {

spgemm::MergeOptions MakeLimitedMergeOptions(const Classification& classes,
                                             const ReorganizerConfig& config) {
  spgemm::MergeOptions options;
  options.block_size = config.block_size;
  if (config.enable_limiting && !classes.limited_rows.empty()) {
    options.limit_row_threshold = classes.limit_row_threshold;
    options.extra_shared_mem_bytes = config.limiting_extra_shmem;
  }
  return options;
}

}  // namespace core
}  // namespace spnet
