// Reproduces Figure 16(b) (and prints the C = AB half of Table III):
// speedups of all methods over the row-product baseline on C = A*B with
// independently generated R-MAT pairs at scale 15..18, edge factor 16.
//
// Flags: --scale (linear factor on the R-MAT scale's edge budget is not
// meaningful here, so --scale instead shifts the scale range: 1.0 runs
// 15..18, 0.25 runs 13..16), --device, --seed, --csv.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/suite.h"
#include "metrics/report.h"
#include "spgemm/algorithm.h"

namespace spnet {
namespace {

int Run(int argc, char** argv) {
  bench::BenchOptions options = bench::BenchOptions::FromArgs(argc, argv);
  {
    // These sweeps never materialize C functionally, so the paper-scale
    // datasets are cheap; default to full size.
    FlagParser flags;
    SPNET_CHECK(flags.Parse(argc, argv).ok());
    if (!flags.Has("scale")) options.scale = 1.0;
  }
  const gpusim::DeviceSpec device = options.Device();
  const auto algorithms = core::MakeAllAlgorithms();

  // Shift the paper's 15..18 range down by log2(1/scale).
  const int shift = static_cast<int>(
      std::lround(std::log2(std::max(options.scale, 1e-6))));
  const int lo = 15 + shift;
  const int hi = 18 + shift;

  std::vector<std::string> header = {"scale", "nnz(A)", "nnz(B)"};
  for (const auto& alg : algorithms) header.push_back(alg->name());
  metrics::Table table(header);

  for (int scale = lo; scale <= hi; ++scale) {
    auto pair = datasets::MaterializeAbPair(scale, options.seed);
    SPNET_CHECK(pair.ok()) << pair.status().ToString();
    double row_seconds = 0.0;
    std::vector<std::string> row = {std::to_string(scale),
                                    metrics::FormatCount(pair->a.nnz()),
                                    metrics::FormatCount(pair->b.nnz())};
    for (const auto& alg : algorithms) {
      auto m = spgemm::Measure(*alg, pair->a, pair->b, device);
      SPNET_CHECK(m.ok()) << alg->name();
      if (alg->name() == "row-product") row_seconds = m->total_seconds;
      row.push_back(metrics::FormatDouble(row_seconds / m->total_seconds));
    }
    table.AddRow(std::move(row));
  }

  std::printf("== Figure 16(b): speedups on C = AB, R-MAT edge factor 16 "
              "(%s, scales %d..%d) ==\n",
              device.name.c_str(), lo, hi);
  std::fputs(options.csv ? table.ToCsv().c_str() : table.ToString().c_str(),
             stdout);
  std::printf("\nPaper reference: C = AB produces a less dense output than "
              "C = A^2, most blocks are underloaded, and Block Reorganizer "
              "gains ~1.09x over the baseline — mostly via B-Gathering — "
              "scaling with input size.\n");

  bench::BenchJson json("fig16b_ab", "Figure 16(b)", options);
  json.AddTable("speedup_c_eq_ab", table);
  json.WriteIfRequested();
  return 0;
}

}  // namespace
}  // namespace spnet

int main(int argc, char** argv) { return spnet::Run(argc, argv); }
