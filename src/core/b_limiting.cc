#include "core/b_limiting.h"

#include "spgemm/exec_context.h"

namespace spnet {
namespace core {

spgemm::MergeOptions MakeLimitedMergeOptions(const Classification& classes,
                                             const ReorganizerConfig& config,
                                             spgemm::ExecContext* ctx) {
  metrics::ScopedSpan span(spgemm::TraceOf(ctx), "b-limiting");
  spgemm::MergeOptions options;
  options.block_size = config.block_size;
  if (config.enable_limiting && !classes.limited_rows.empty()) {
    options.limit_row_threshold = classes.limit_row_threshold;
    options.extra_shared_mem_bytes = config.limiting_extra_shmem;
  }
  spgemm::SetGauge(ctx, "limiting.limited_rows",
                   static_cast<double>(classes.limited_rows.size()));
  spgemm::SetGauge(ctx, "limiting.extra_shmem_bytes",
                   static_cast<double>(options.extra_shared_mem_bytes));
  return options;
}

}  // namespace core
}  // namespace spnet
