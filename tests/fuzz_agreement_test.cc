// Randomized cross-algorithm agreement sweep: for a grid of generator
// families and seeds, every algorithm in the extended suite must produce
// exactly the same product as the reference Gustavson implementation —
// on C = A^2 and on rectangular C = A*B with mismatched shapes.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/suite.h"
#include "datasets/generators.h"
#include "sparse/reference_spgemm.h"
#include "spgemm/algorithm.h"
#include "tests/test_util.h"

namespace spnet {
namespace {

using sparse::CsrMatrix;

CsrMatrix MakeRandomish(int family, uint64_t seed) {
  switch (family % 4) {
    case 0: {
      datasets::PowerLawParams p;
      p.rows = p.cols = 150 + static_cast<sparse::Index>(seed % 60);
      p.nnz = 6 * p.rows;
      p.row_skew = 0.4 + 0.15 * static_cast<double>(seed % 5);
      p.col_skew = p.row_skew;
      p.seed = seed;
      auto m = datasets::GeneratePowerLaw(p);
      SPNET_CHECK(m.ok());
      return std::move(m).value();
    }
    case 1: {
      datasets::QuasiRegularParams p;
      p.n = 170 + static_cast<sparse::Index>(seed % 40);
      p.nnz = 10 * p.n;
      p.band_frac = 0.05;
      p.seed = seed;
      auto m = datasets::GenerateQuasiRegular(p);
      SPNET_CHECK(m.ok());
      return std::move(m).value();
    }
    case 2: {
      datasets::RmatParams p;
      p.scale = 8;
      p.edge_count = 900 + static_cast<int64_t>(seed % 500);
      p.seed = seed;
      auto m = datasets::GenerateRmat(p);
      SPNET_CHECK(m.ok());
      return std::move(m).value();
    }
    default:
      return testing_util::RandomMatrix(
          130 + static_cast<sparse::Index>(seed % 50), 180, 0.04, seed);
  }
}

using FuzzParam = std::tuple<int, int>;  // (family, seed)

const char* const kFamilies[] = {"powerlaw", "banded", "rmat", "uniform"};

class FuzzAgreementTest : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(FuzzAgreementTest, AllAlgorithmsAgreeWithReference) {
  const auto [family, seed] = GetParam();
  const CsrMatrix a = MakeRandomish(family, 100 + static_cast<uint64_t>(seed));
  // Square product when shapes allow; otherwise pair with a compatible
  // random right-hand side.
  const CsrMatrix b =
      a.rows() == a.cols()
          ? a
          : testing_util::RandomMatrix(a.cols(), 120, 0.05,
                                       200 + static_cast<uint64_t>(seed));
  auto expected = sparse::ReferenceSpGemm(a, b);
  ASSERT_TRUE(expected.ok());
  for (const auto& alg : core::MakeExtendedSuite()) {
    auto got = alg->Compute(a, b);
    ASSERT_TRUE(got.ok()) << alg->name();
    EXPECT_TRUE(CsrApproxEqual(*expected, *got, 1e-9))
        << alg->name() << " family " << family << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesTimesSeeds, FuzzAgreementTest,
    ::testing::Combine(::testing::Range(0, 4), ::testing::Range(0, 5)),
    [](const ::testing::TestParamInfo<FuzzParam>& param_info) {
      return std::string(kFamilies[std::get<0>(param_info.param)]) + "_seed" +
             std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace spnet
