#ifndef SPNET_SPGEMM_ROW_PRODUCT_H_
#define SPNET_SPGEMM_ROW_PRODUCT_H_

#include "spgemm/algorithm.h"
#include "spgemm/workload_model.h"

namespace spnet {
namespace spgemm {

/// The paper's main baseline: row-product expansion (one thread per output
/// row, thread t expands row t's partial products) followed by the
/// Gustavson dense-accumulator merge. Thread-level load imbalance inside a
/// warp is this scheme's weakness on power-law data: a warp's lanes run in
/// lock-step, so every lane waits for the hub row.
class RowProductSpGemm : public SpGemmAlgorithm {
 public:
  std::string name() const override { return "row-product"; }

 protected:
  Result<SpGemmPlan> PlanImpl(const sparse::CsrMatrix& a,
                              const sparse::CsrMatrix& b,
                              const gpusim::DeviceSpec& device,
                              ExecContext* ctx) const override;

  Result<sparse::CsrMatrix> ComputeImpl(const sparse::CsrMatrix& a,
                                        const sparse::CsrMatrix& b,
                                        ExecContext* ctx) const override;
};

/// Knobs for the row-product expansion kernel builder, used to express
/// the library surrogates' structural differences.
struct RowExpansionOptions {
  const char* label = "row-product-expansion";
  int block_size = 256;
  /// Scales all memory traffic (two-pass schemes read everything twice).
  double traffic_multiplier = 1.0;
  /// Models uncoalesced per-thread row-buffer writes (>1 = extra
  /// transactions per logical byte).
  double write_scatter_factor = 1.5;
  /// Scales instruction counts (sorted-insertion accumulation pays a
  /// log-factor per product).
  double ops_multiplier = 1.0;
  /// When set, rows are processed in this order (bhSPARSE-style binning
  /// assigns similar rows to the same warp). Must be a permutation of
  /// [0, rows).
  const std::vector<int64_t>* row_order = nullptr;
};

/// Builds the row-product expansion kernel over `workload`.
gpusim::KernelDesc BuildRowProductExpansion(const Workload& workload,
                                            const RowExpansionOptions& options);

}  // namespace spgemm
}  // namespace spnet

#endif  // SPNET_SPGEMM_ROW_PRODUCT_H_
