// Fixture: overrides that thread ExecContext* — and plain call sites of
// the hooks — never fire exec-context-threading.
#include "spgemm/algorithm.h"

namespace spnet {

class GoodAlgorithm : public spgemm::SpGemmAlgorithm {
 private:
  Result<spgemm::SpGemmPlan> PlanImpl(const sparse::CsrMatrix& a,
                                      const sparse::CsrMatrix& b,
                                      const gpusim::DeviceSpec& device,
                                      spgemm::ExecContext* ctx) const override;

  Result<spgemm::SpGemmMeasurement> ComputeImpl(
      const spgemm::SpGemmPlan& plan,
      spgemm::ExecContext* ctx) const override {
    return DoCompute(plan, ctx);
  }
};

Result<spgemm::SpGemmPlan> Dispatch(const GoodAlgorithm& algorithm) {
  // A call site: the arguments name no types, and nothing trailing marks
  // it as a declaration.
  return PlanImpl(a, b, device, ctx);
}

}  // namespace spnet
