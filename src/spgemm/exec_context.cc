#include "spgemm/exec_context.h"

#include "common/parallel.h"
#include "metrics/json_writer.h"

namespace spnet {
namespace spgemm {

std::string ExecContext::ToJson() const {
  metrics::JsonWriter w;
  w.BeginObject();
  w.Key("schema_version").Int(1);
  w.Key("metrics");
  registry.AppendJson(&w);
  w.Key("trace");
  trace.AppendJson(&w);
  w.EndObject();
  return w.str();
}

Status ExecContext::WriteJsonFile(const std::string& path) const {
  return metrics::WriteTextFile(path, ToJson());
}

void AddCounter(ExecContext* ctx, const std::string& name, int64_t delta) {
  if (ctx != nullptr) ctx->registry.AddCounter(name, delta);
}

void SetGauge(ExecContext* ctx, const std::string& name, double value) {
  if (ctx != nullptr) ctx->registry.SetGauge(name, value);
}

void ObserveHistogram(ExecContext* ctx, const std::string& name,
                      int64_t value) {
  if (ctx != nullptr) ctx->registry.ObserveHistogram(name, value);
}

metrics::TraceRecorder* TraceOf(ExecContext* ctx) {
  return ctx == nullptr ? nullptr : &ctx->trace;
}

ScopedPoolStats::ScopedPoolStats(ExecContext* ctx) : ctx_(ctx) {
  if (ctx_ == nullptr) return;
  if (ctx_->pool_scope_depth++ > 0) return;  // inner scope: no-op
  const ThreadPool::Stats s = GlobalThreadPool().stats();
  start_parallel_jobs_ = s.parallel_jobs;
  start_inline_jobs_ = s.inline_jobs;
  start_chunks_run_ = s.chunks_run;
  start_chunks_stolen_ = s.chunks_stolen;
}

ScopedPoolStats::~ScopedPoolStats() {
  if (ctx_ == nullptr) return;
  if (--ctx_->pool_scope_depth > 0) return;
  const ThreadPool::Stats s = GlobalThreadPool().stats();
  ctx_->registry.AddCounter("pool.parallel_jobs",
                            s.parallel_jobs - start_parallel_jobs_);
  ctx_->registry.AddCounter("pool.inline_jobs",
                            s.inline_jobs - start_inline_jobs_);
  ctx_->registry.AddCounter("pool.chunks_run",
                            s.chunks_run - start_chunks_run_);
  ctx_->registry.AddCounter("pool.chunks_stolen",
                            s.chunks_stolen - start_chunks_stolen_);
  ctx_->registry.SetGauge("pool.threads",
                          static_cast<double>(GlobalThreadCount()));
}

}  // namespace spgemm
}  // namespace spnet
