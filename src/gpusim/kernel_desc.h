#ifndef SPNET_GPUSIM_KERNEL_DESC_H_
#define SPNET_GPUSIM_KERNEL_DESC_H_

#include <cstdint>
#include <string>
#include <vector>

namespace spnet {
namespace gpusim {

/// Which pipeline phase a kernel belongs to; used to split counters the
/// way the paper's Figure 3(c) does.
enum class Phase {
  kExpansion,
  kMerge,
  kPreprocess,
};

const char* PhaseName(Phase phase);

/// Workload descriptor of one thread block, the unit the SIMT timing model
/// consumes. The spGEMM layers translate algorithm structure (which pair /
/// rows a block handles, how threads map to nonzeros) into these aggregate
/// quantities; the simulator never needs the matrices themselves.
struct ThreadBlockDesc {
  /// Launched threads (the CUDA block size).
  int threads = 0;
  /// Threads that perform useful work. Lock-step warps mean the block
  /// still occupies ceil(threads/32) warps of issue bandwidth.
  int effective_threads = 0;

  /// Sum over the block's warps of the *longest* lane's op count — the
  /// warp-instructions actually issued under lock-step execution.
  int64_t warp_issue_ops = 0;
  /// Longest lane in the whole block: every lane is held at the closing
  /// barrier for this many op-slots, which is what the sync-stall metric
  /// charges against.
  int64_t crit_ops = 0;
  /// Sum over all lanes of useful ops; warp_issue_ops*32 - useful_lane_ops
  /// lane-slots are wasted (divergence / sync stalls).
  int64_t useful_lane_ops = 0;

  /// Global memory traffic after coalescing.
  int64_t bytes_read = 0;
  int64_t bytes_written = 0;
  /// Subset of bytes_read expected hot in L2 because concurrently-running
  /// blocks share it (e.g. the duplicated dominator vectors after
  /// B-Splitting).
  int64_t shared_read_bytes = 0;

  /// Per-block shared memory request; with B-Limiting this includes the
  /// extra allocation used purely to lower residency.
  int64_t shared_mem_bytes = 0;

  /// Atomic read-modify-write operations (merge accumulators).
  int64_t atomic_ops = 0;
  /// True when the accumulator fits in shared memory: atomics stay on-chip
  /// and avoid L2 residency contention entirely. Long output rows cannot
  /// do this — they are the B-Limiting targets.
  bool atomics_in_shared = false;

  /// For gathered blocks: how many micro-blocks are packed here. Purely
  /// informational for stats.
  int gathered_partitions = 1;
};

/// One kernel launch: an ordered list of thread blocks dispatched to the
/// device, plus bookkeeping for reporting.
struct KernelDesc {
  std::string label;
  Phase phase = Phase::kExpansion;
  std::vector<ThreadBlockDesc> blocks;

  /// Useful floating-point work this kernel contributes (for GFLOPS).
  int64_t flops = 0;

  /// Total footprint (bytes) the kernel streams from DRAM if nothing is
  /// cached; used by the L2 reuse model together with per-block traffic.
  int64_t working_set_bytes = 0;
};

}  // namespace gpusim
}  // namespace spnet

#endif  // SPNET_GPUSIM_KERNEL_DESC_H_
