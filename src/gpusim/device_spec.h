#ifndef SPNET_GPUSIM_DEVICE_SPEC_H_
#define SPNET_GPUSIM_DEVICE_SPEC_H_

#include <cstdint>
#include <string>

namespace spnet {
namespace gpusim {

/// Architectural parameters of a simulated GPU.
///
/// The presets mirror Table I of the paper (Titan Xp / Tesla V100 /
/// RTX 2080 Ti). Bandwidths are expressed in bytes per core clock cycle so
/// that the timing model works in cycles and converts to seconds only when
/// reporting. The derived ratios (SM count, shared memory per SM, L2 size,
/// DRAM vs L2 bandwidth) are what drive the paper's phenomena; absolute
/// values set the GFLOPS scale.
struct DeviceSpec {
  std::string name;

  int num_sms = 30;
  int warp_size = 32;
  /// Warp schedulers per SM: how many warps can issue in the same cycle.
  int schedulers_per_sm = 4;
  int max_threads_per_sm = 2048;
  int max_blocks_per_sm = 32;
  int64_t shared_mem_per_sm = 96 * 1024;  ///< bytes
  int64_t register_file_per_sm = 256 * 1024;

  double clock_ghz = 1.582;

  int64_t l2_size = 3 * 1024 * 1024;  ///< bytes
  /// Aggregate L2 bandwidth available to all SMs, bytes per cycle.
  double l2_bw_bytes_per_cycle = 1024.0;
  /// Aggregate DRAM bandwidth, bytes per cycle.
  double dram_bw_bytes_per_cycle = 346.0;
  /// Per-SM load/store pipeline bandwidth, bytes per cycle. A single
  /// thread block cannot pull more than this no matter how wide L2 is —
  /// the reason one overloaded block cannot saturate the chip.
  double lsu_bw_bytes_per_sm = 256.0;

  int l2_latency_cycles = 220;
  int dram_latency_cycles = 480;

  /// Issue cycles per warp-instruction (fused multiply-add plus the
  /// bookkeeping of the spGEMM inner loop, amortized).
  double cpi = 12.0;

  /// Maximum latency-hiding factor fast context switching can reach when
  /// enough eligible warps are resident (one new warp can issue roughly
  /// every other cycle per scheduler).
  double max_latency_hiding = 16.0;

  /// Peak single-precision-equivalent throughput used only for reporting
  /// context, ops per cycle over the whole device.
  double flops_per_cycle = 3840.0;

  // --- Execution-model parameters (shared by all presets). -----------------
  // These calibrate the per-block cost model; see simulator.cc for how
  // each term is charged. Values were fit so the seven-algorithm
  // comparison reproduces the paper's relative results (EXPERIMENTS.md).

  /// Fixed device-side cost of one kernel launch.
  double kernel_launch_cycles = 3000.0;
  /// SM-side cost of starting one thread block.
  double block_startup_cycles = 200.0;
  /// Device-wide block dispatch interval (GigaThread throughput).
  double block_dispatch_cycles = 4.0;
  /// Store-queue backpressure round trip per store transaction.
  double store_backpressure_cycles = 50.0;
  /// Granularity at which scattered stores consume store-queue slots.
  double store_transaction_bytes = 128.0;
  /// Latency hiding = clamp(base + per_warp * eligible_warps, 1, max):
  /// the affine form keeps the underloaded-block penalty in the 1.5-3x
  /// range the paper's B-Gathering gains imply.
  double latency_hiding_base = 4.0;
  double latency_hiding_per_warp = 4.0;
  /// Global-memory atomic RMW cost without contention.
  double atomic_cycles = 10.0;
  /// Shared-memory atomic cost.
  double shared_atomic_cycles = 2.0;
  /// Cap on residency-driven atomic contention.
  double max_atomic_contention = 16.0;
  /// Per-resident-block in-flight L2 footprint for global accumulation.
  double block_inflight_bytes = 98304.0;
  /// L2 hit rate of streaming (read-once) traffic.
  double streaming_hit_rate = 0.2;
  /// Fraction of cross-block hot reads served by the L1.
  double hot_l1_fraction = 0.75;

  /// Preset matching the paper's System 1 GPU (30 SMs, Pascal).
  static DeviceSpec TitanXp();
  /// Preset matching the paper's System 2 GPU (80 SMs, Volta).
  static DeviceSpec TeslaV100();
  /// Preset matching the paper's System 3 GPU (68 SMs, Turing).
  static DeviceSpec Rtx2080Ti();

  /// Seconds represented by `cycles` at this device's clock.
  double CyclesToSeconds(double cycles) const {
    return cycles / (clock_ghz * 1e9);
  }
};

}  // namespace gpusim
}  // namespace spnet

#endif  // SPNET_GPUSIM_DEVICE_SPEC_H_
