#ifndef SPNET_BENCH_BENCH_UTIL_H_
#define SPNET_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "datasets/cache.h"
#include "datasets/registry.h"
#include "gpusim/device_spec.h"
#include "sparse/csr_matrix.h"

namespace spnet {
namespace bench {

/// Flags shared by every experiment binary.
///
///   --scale=<f>    linear dataset scale, 1.0 = paper dimensions
///                  (default 0.25 keeps the full suite minutes-fast on one
///                  core; EXPERIMENTS.md records both scales)
///   --device=<s>   titanxp | v100 | 2080ti
///   --seed=<n>     generator seed
///   --csv          emit CSV instead of aligned tables
///   --threads=<n>  host threads for the functional expansion/merge stack
///                  (default: hardware concurrency; 1 = historical serial
///                  path; affects host wall-clock only, never simulated
///                  cycles or results)
struct BenchOptions {
  double scale = 0.25;
  uint64_t seed = 42;
  std::string device_name = "titanxp";
  bool csv = false;
  /// Host thread count for the functional stack; 0 = hardware concurrency.
  int threads = 0;
  /// When set (--cache=<dir>), generated datasets are cached on disk as
  /// binary .spnb files and reloaded on later runs.
  std::string cache_dir;

  static BenchOptions FromArgs(int argc, const char* const* argv) {
    FlagParser flags;
    const Status s = flags.Parse(argc, argv);
    SPNET_CHECK(s.ok()) << s.ToString();
    BenchOptions o;
    o.scale = flags.GetDouble("scale", o.scale);
    o.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    o.device_name = flags.GetString("device", o.device_name);
    o.csv = flags.GetBool("csv", false);
    o.threads = static_cast<int>(flags.GetInt("threads", 0));
    o.cache_dir = flags.GetString("cache", "");
    SetGlobalThreadCount(o.threads);
    return o;
  }

  gpusim::DeviceSpec Device() const {
    if (device_name == "v100") return gpusim::DeviceSpec::TeslaV100();
    if (device_name == "2080ti") return gpusim::DeviceSpec::Rtx2080Ti();
    return gpusim::DeviceSpec::TitanXp();
  }
};

/// Materializes one Table II dataset or dies (benches treat generator
/// failure as fatal).
inline sparse::CsrMatrix LoadDataset(const std::string& name,
                                     const BenchOptions& options) {
  auto spec = datasets::FindDataset(name);
  SPNET_CHECK(spec.ok()) << spec.status().ToString();
  auto m = datasets::MaterializeCached(*spec, options.scale,
                                       options.cache_dir, options.seed);
  SPNET_CHECK(m.ok()) << m.status().ToString();
  return std::move(m).value();
}

/// All 28 Table II names in paper order.
inline std::vector<std::string> AllDatasetNames() {
  std::vector<std::string> names;
  for (const auto& spec : datasets::TableTwoDatasets()) {
    names.push_back(spec.name);
  }
  return names;
}

}  // namespace bench
}  // namespace spnet

#endif  // SPNET_BENCH_BENCH_UTIL_H_
