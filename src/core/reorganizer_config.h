#ifndef SPNET_CORE_REORGANIZER_CONFIG_H_
#define SPNET_CORE_REORGANIZER_CONFIG_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "sparse/reorder.h"

namespace spnet {
namespace core {

/// How the planner precalculates the C-hat workload before classifying.
///   * kExact: the paper's full block-wise + row-wise precalculation.
///   * kEstimated: sampled estimation (spgemm::BuildWorkloadEstimated) with
///     per-entry exact fallback only where a confidence band straddles a
///     classification threshold — the OCEAN-style cheap tier.
///   * kAuto: estimated first; rebuilt exactly when the resulting plan
///     confidence falls below `min_plan_confidence`.
enum class PlanningTier {
  kExact = 0,
  kEstimated = 1,
  kAuto = 2,
};

/// Canonical flag spelling ("exact" | "estimated" | "auto").
const char* PlanningTierName(PlanningTier tier);

/// Inverse of PlanningTierName; InvalidArgument on unknown spellings.
Result<PlanningTier> ParsePlanningTier(const std::string& name);

/// Tuning knobs of the Block Reorganizer (Section IV of the paper). The
/// defaults reproduce the paper's configuration; the per-technique enables
/// drive the Figure 10 ablation and the factor overrides drive the
/// Figure 11/14 sweeps.
struct ReorganizerConfig {
  bool enable_splitting = true;
  bool enable_gathering = true;
  bool enable_limiting = true;

  /// Dominator threshold multiplier: pairs producing more than
  /// alpha * nnz(C-hat) / #nonzero-pairs intermediate elements are
  /// dominators. (The paper writes the threshold as
  /// nnz(C-hat)/(#blocks * alpha) but describes raising alpha to *avoid*
  /// selecting too many dominators, i.e. alpha multiplies the mean; we
  /// follow the description.) Higher = fewer dominators.
  double alpha = 32.0;

  /// Merge-limiting threshold multiplier: output rows with more than
  /// beta * nnz(C-hat) / #nonzero-rows intermediate elements get the
  /// residency-limited merge kernel. Paper value: 10.
  double beta = 10.0;

  /// Fixed splitting factor (power of two) for every dominator; 0 selects
  /// the heuristic (split past the SM count, keep fragments useful). The
  /// Figure 11/12 sweeps set 1..64.
  int splitting_factor_override = 0;

  /// Extra shared memory (bytes) allocated to the limited merge kernel —
  /// the paper's "limiting factor", default 4 * 6144. The Figure 14 sweep
  /// sets 0..7*6144.
  int64_t limiting_extra_shmem = 4 * 6144;

  /// Thread block size for expansion and merge kernels.
  int block_size = 256;

  /// Which precalculation tier Plan/Analyze use (see PlanningTier).
  /// Compute always executes against the exact workload; the tier only
  /// chooses how classification inputs are obtained.
  PlanningTier planning_tier = PlanningTier::kExact;

  /// Fraction of A's rows the estimated tier scans exactly (the sampled
  /// rows anchor the confidence bands). Must be in (0, 1].
  double estimator_sample_fraction = 0.05;

  /// Below this plan confidence the kAuto tier falls back to exact
  /// precalculation. Must be in [0, 1].
  double min_plan_confidence = 0.5;

  /// Structural reordering pre-pass (sparse::BuildRowPermutation) applied
  /// before planning and execution: A's rows and B's columns are permuted,
  /// the product is computed in the permuted space, and the inverse
  /// permutations are applied to the output. The inner (contraction)
  /// dimension is never permuted, so every per-entry accumulation runs in
  /// the original order and results stay bit-identical to the unpermuted
  /// baseline (up to within-row entry order).
  sparse::ReorderStrategy reorder = sparse::ReorderStrategy::kNone;

  /// Checks the knobs are usable before an algorithm is built around
  /// them: alpha/beta strictly positive, splitting_factor_override zero
  /// (heuristic) or a power of two, limiting_extra_shmem non-negative,
  /// block_size a positive multiple of the 32-lane warp, the estimator
  /// fraction in (0, 1] and the confidence floor in [0, 1].
  /// MakeBlockReorganizer and AutoTune refuse invalid configs with this
  /// Status instead of silently running with nonsense thresholds.
  Status Validate() const;

  /// 64-bit hash over every knob, deterministic across runs. Part of the
  /// engine::PlanCache key: two reorganizer instances with different knobs
  /// must never share a cached plan.
  uint64_t Fingerprint() const;
};

}  // namespace core
}  // namespace spnet

#endif  // SPNET_CORE_REORGANIZER_CONFIG_H_
