#ifndef SPNET_VERIFY_FAULT_INJECTION_H_
#define SPNET_VERIFY_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace spnet {
namespace verify {

/// Canonical fault-site names. Production code passes these to
/// MaybeInjectFault(); tests and the CLI arm them by the same spelling.
/// Keep the list in sync with DESIGN.md §verify.
inline constexpr char kSiteLoaderRead[] = "sparse.loader.read";
inline constexpr char kSitePlan[] = "spgemm.plan";
inline constexpr char kSiteCompute[] = "spgemm.compute";
inline constexpr char kSiteChatAlloc[] = "core.chat.alloc";
/// serve::Server admission control: an armed site rejects the request
/// before quota/queue checks, exercising the rejection path
/// deterministically.
inline constexpr char kSiteServeAdmit[] = "serve.admit";

/// Process-wide deterministic fault injector.
///
/// Production code compiles in named check points (`MaybeInjectFault(site)`)
/// at its fallible boundaries: loader reads, plan construction, and the
/// big intermediate-buffer allocations. Disarmed — the default — a check
/// point costs one relaxed atomic load and nothing else; call counts are
/// not even tracked. Armed, every check point counts its calls (1-based)
/// and the armed site fails deterministically inside its configured call
/// window, so tests exercise failure paths (BatchRunner fallback, Status
/// propagation, partial-load cleanup) without mocks and without
/// randomness.
///
/// Arming is either programmatic (`Arm`) or declarative through the
/// `SPNET_FAULT_INJECT` environment variable, parsed on first use:
///
///   SPNET_FAULT_INJECT="spgemm.plan=2"          fail the 2nd Plan call
///   SPNET_FAULT_INJECT="spgemm.plan=1:0"        fail every Plan call
///   SPNET_FAULT_INJECT="sparse.loader.read=3:2" fail the 3rd and 4th read
///   SPNET_FAULT_INJECT="core.chat.alloc=1:1:io" fail once with kIoError
///
/// Spec grammar: comma-separated `site=first[:count[:code]]` where `first`
/// is the 1-based call ordinal, `count` is the number of consecutive
/// failing calls (0 = every call from `first` on; default 1) and `code`
/// is one of internal|io|invalid|unavailable-ish spellings (default
/// internal). Injected statuses carry the message
/// "injected fault at <site> (call N)" so they are recognizable in logs.
///
/// Thread-safe; the failure window is per-site, counted across threads.
class FaultInjector {
 public:
  static FaultInjector& Global();

  /// Arms `site` to fail calls [first, first+count) (1-based ordinals);
  /// count == 0 means every call from `first` on. Re-arming a site
  /// replaces its window and resets its call count.
  void Arm(const std::string& site, int64_t first, int64_t count = 1,
           StatusCode code = StatusCode::kInternal);

  /// Parses the `site=first[:count[:code]]` spec grammar (see class
  /// comment) and arms every entry. InvalidArgument on malformed specs.
  [[nodiscard]] Status ArmFromSpec(const std::string& spec);

  /// Disarms every site and zeroes all call counts.
  void Reset();

  /// Calls observed at `site` since the last Reset/Arm of that site.
  /// Counting only happens while at least one site is armed.
  int64_t CallCount(const std::string& site) const;

  /// True if any site is currently armed.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// The check point: OK unless `site` is armed and this call falls in
  /// its failure window.
  [[nodiscard]] Status Check(const char* site);

 private:
  struct Site {
    int64_t calls = 0;   ///< observed calls (1-based ordinals)
    int64_t first = 0;   ///< 0 = not armed, counting only
    int64_t count = 1;   ///< 0 = unbounded
    StatusCode code = StatusCode::kInternal;
  };

  FaultInjector();

  /// Fast-path flag mirroring "sites_ has at least one armed entry";
  /// relaxed loads are fine because Check() re-validates under mu_.
  std::atomic<bool> armed_{false};
  mutable Mutex mu_;
  std::map<std::string, Site> sites_ GUARDED_BY(mu_);
};

/// The instrumentation entry point used by production code. Disarmed cost:
/// one relaxed atomic load.
[[nodiscard]] inline Status MaybeInjectFault(const char* site) {
  FaultInjector& injector = FaultInjector::Global();
  if (!injector.armed()) return Status::Ok();
  return injector.Check(site);
}

}  // namespace verify
}  // namespace spnet

#endif  // SPNET_VERIFY_FAULT_INJECTION_H_
