// Fixture: target of the suppressed upward include.
#ifndef FIXTURE_ENGINE_BETA_H_
#define FIXTURE_ENGINE_BETA_H_

inline int FixtureBeta() { return 2; }

#endif  // FIXTURE_ENGINE_BETA_H_
