// Tests for the estimation planning tier: BuildWorkloadEstimated's
// guaranteed bands, its exact pair side, the confidence accounting, and
// ClassifyEstimated's agreement contract with the exact classifier
// (verify::CheckEstimatedClassification as a hard invariant).

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <numeric>

#include "core/reorganizer_config.h"
#include "core/workload_classifier.h"
#include "sparse/coo_matrix.h"
#include "sparse/csr_matrix.h"
#include "spgemm/nnz_estimator.h"
#include "spgemm/workload_model.h"
#include "tests/test_util.h"
#include "verify/invariants.h"

namespace spnet {
namespace spgemm {
namespace {

using sparse::CsrMatrix;

/// Asserts the structural contract of an estimate against the exact
/// workload for the same operands: the pair side is exact with collapsed
/// bands, every row band brackets the exact row_chat, and rows flagged
/// exact really are.
void ExpectBandsBracketExact(const Workload& exact,
                             const EstimatedWorkload& est) {
  ASSERT_EQ(est.workload.b_row_nnz, exact.b_row_nnz);
  ASSERT_EQ(est.workload.a_col_nnz, exact.a_col_nnz);
  ASSERT_EQ(est.workload.pair_work, exact.pair_work);
  EXPECT_EQ(est.workload.flops, exact.flops);
  ASSERT_EQ(est.pair_work_lo.size(), exact.pair_work.size());
  ASSERT_EQ(est.pair_work_hi.size(), exact.pair_work.size());
  for (size_t i = 0; i < exact.pair_work.size(); ++i) {
    EXPECT_EQ(est.pair_work_lo[i], exact.pair_work[i]) << "pair " << i;
    EXPECT_EQ(est.pair_work_hi[i], exact.pair_work[i]) << "pair " << i;
  }
  ASSERT_EQ(est.row_chat_lo.size(), exact.row_chat.size());
  ASSERT_EQ(est.row_chat_hi.size(), exact.row_chat.size());
  ASSERT_EQ(est.row_exact.size(), exact.row_chat.size());
  for (size_t r = 0; r < exact.row_chat.size(); ++r) {
    EXPECT_LE(est.row_chat_lo[r], exact.row_chat[r]) << "row " << r;
    EXPECT_GE(est.row_chat_hi[r], exact.row_chat[r]) << "row " << r;
    // The point estimate must live inside its own band.
    EXPECT_LE(est.row_chat_lo[r], est.workload.row_chat[r]) << "row " << r;
    EXPECT_GE(est.row_chat_hi[r], est.workload.row_chat[r]) << "row " << r;
    if (est.row_exact[r]) {
      EXPECT_EQ(est.workload.row_chat[r], exact.row_chat[r]) << "row " << r;
      EXPECT_EQ(est.row_chat_lo[r], est.row_chat_hi[r]) << "row " << r;
    }
  }
}

TEST(NnzEstimatorTest, BandsBracketExactOnSkewedInput) {
  const CsrMatrix a = testing_util::SkewedMatrix(400, 160, 11);
  const Workload exact = BuildWorkload(a, a);
  const EstimatedWorkload est = BuildWorkloadEstimated(a, a);
  ExpectBandsBracketExact(exact, est);
  EXPECT_GE(est.confidence, 0.0);
  EXPECT_LE(est.confidence, 1.0);
  EXPECT_LE(est.exact_mass, exact.flops);
  // The pair-side denominator is exact by construction.
  int64_t nonzero_pairs = 0;
  for (int64_t pw : exact.pair_work) nonzero_pairs += (pw > 0);
  EXPECT_EQ(est.estimated_nonzero_pairs, nonzero_pairs);
}

TEST(NnzEstimatorTest, BandsBracketExactOnUniformInput) {
  const CsrMatrix a = testing_util::RandomMatrix(120, 90, 0.04, 3);
  const CsrMatrix b = testing_util::RandomMatrix(90, 150, 0.05, 4);
  ExpectBandsBracketExact(BuildWorkload(a, b), BuildWorkloadEstimated(a, b));
}

TEST(NnzEstimatorTest, FullSampleFractionIsExactEverywhere) {
  const CsrMatrix a = testing_util::SkewedMatrix(200, 96, 7);
  const Workload exact = BuildWorkload(a, a);
  EstimatorOptions options;
  options.sample_fraction = 1.0;
  const EstimatedWorkload est = BuildWorkloadEstimated(a, a, options);
  EXPECT_DOUBLE_EQ(est.confidence, 1.0);
  EXPECT_EQ(est.sampled_rows, a.rows());
  for (size_t r = 0; r < exact.row_chat.size(); ++r) {
    ASSERT_TRUE(est.row_exact[r]) << "row " << r;
    EXPECT_EQ(est.workload.row_chat[r], exact.row_chat[r]) << "row " << r;
    EXPECT_EQ(est.workload.row_c_est[r], exact.row_c_est[r]) << "row " << r;
  }
  EXPECT_EQ(est.workload.output_nnz, exact.output_nnz);
}

TEST(NnzEstimatorTest, DeterministicAcrossCalls) {
  const CsrMatrix a = testing_util::SkewedMatrix(300, 128, 5);
  const EstimatedWorkload x = BuildWorkloadEstimated(a, a);
  const EstimatedWorkload y = BuildWorkloadEstimated(a, a);
  EXPECT_EQ(x.workload.row_chat, y.workload.row_chat);
  EXPECT_EQ(x.workload.row_c_est, y.workload.row_c_est);
  EXPECT_EQ(x.row_chat_lo, y.row_chat_lo);
  EXPECT_EQ(x.row_chat_hi, y.row_chat_hi);
  EXPECT_EQ(x.row_exact, y.row_exact);
  EXPECT_DOUBLE_EQ(x.confidence, y.confidence);
  EXPECT_EQ(x.sampled_rows, y.sampled_rows);
}

TEST(NnzEstimatorTest, HubCountZeroStillBracketsExact) {
  const CsrMatrix a = testing_util::SkewedMatrix(256, 100, 9);
  const Workload exact = BuildWorkload(a, a);
  EstimatorOptions options;
  options.hub_rows = 0;  // every B row is "light": widest valid bands
  ExpectBandsBracketExact(exact, BuildWorkloadEstimated(a, a, options));
}

TEST(NnzEstimatorTest, HubCountAboveRowsBracketsExact) {
  const CsrMatrix a = testing_util::SkewedMatrix(128, 64, 13);
  EstimatorOptions options;
  options.hub_rows = 1 << 20;  // more hubs than rows: degenerates safely
  ExpectBandsBracketExact(BuildWorkload(a, a),
                          BuildWorkloadEstimated(a, a, options));
}

TEST(NnzEstimatorTest, WiderAThanBKeepsBandsSound) {
  // a.cols() > b.rows(): A columns past B's end contribute nothing; the
  // light-entry lower bound must drop to zero for those rows rather than
  // assume every light entry hits a real B row.
  sparse::CooMatrix coo_a(6, 12);
  for (sparse::Index r = 0; r < 6; ++r) {
    coo_a.Add(r, r, 1.0);
    coo_a.Add(r, static_cast<sparse::Index>(11 - r), 1.0);  // past b.rows()
  }
  sparse::CooMatrix coo_b(4, 5);
  for (sparse::Index r = 0; r < 4; ++r) {
    for (sparse::Index c = 0; c < 5; ++c) coo_b.Add(r, c, 1.0);
  }
  auto a = CsrMatrix::FromCoo(coo_a);
  auto b = CsrMatrix::FromCoo(coo_b);
  ASSERT_TRUE(a.ok() && b.ok());
  EstimatorOptions options;
  options.min_sample_rows = 1;
  options.sample_fraction = 1e-9;  // force the estimated path
  ExpectBandsBracketExact(BuildWorkload(*a, *b),
                          BuildWorkloadEstimated(*a, *b, options));
}

TEST(NnzEstimatorTest, EmptyOperandsAreExactWithFullConfidence) {
  sparse::CooMatrix coo(0, 0);
  auto empty = CsrMatrix::FromCoo(coo);
  ASSERT_TRUE(empty.ok());
  const EstimatedWorkload est = BuildWorkloadEstimated(*empty, *empty);
  EXPECT_DOUBLE_EQ(est.confidence, 1.0);
  EXPECT_EQ(est.workload.flops, 0);
  EXPECT_EQ(est.workload.output_nnz, 0);
  EXPECT_EQ(est.estimated_nonzero_pairs, 0);
}

TEST(NnzEstimatorTest, ClassifyEstimatedSatisfiesHardInvariant) {
  const core::ReorganizerConfig config;
  for (uint64_t seed : {2u, 17u, 23u}) {
    const CsrMatrix a = testing_util::SkewedMatrix(350, 140, seed);
    const Workload exact = BuildWorkload(a, a);
    EstimatedWorkload est = BuildWorkloadEstimated(a, a);
    const core::Classification classes =
        core::ClassifyEstimated(&est, a, a, config);
    const Status invariant =
        verify::CheckEstimatedClassification(exact, est, classes);
    EXPECT_TRUE(invariant.ok()) << "seed " << seed << ": "
                                << invariant.ToString();
  }
}

TEST(NnzEstimatorTest, ClassifyEstimatedMatchesExactBins) {
  // The pair side of the estimate is exact, so with identical thresholds
  // the dominator / low-performer / normal bins must match the exact
  // classifier bin for bin (phantom entries can only come from pair bands,
  // which are collapsed).
  const core::ReorganizerConfig config;
  const CsrMatrix a = testing_util::SkewedMatrix(300, 120, 29);
  const Workload exact = BuildWorkload(a, a);
  const core::Classification want = core::Classify(exact, config);
  EstimatedWorkload est = BuildWorkloadEstimated(a, a);
  const core::Classification got =
      core::ClassifyEstimated(&est, a, a, config);
  EXPECT_EQ(got.dominator_threshold, want.dominator_threshold);
  EXPECT_EQ(got.dominators, want.dominators);
  EXPECT_EQ(got.low_performers, want.low_performers);
  EXPECT_EQ(got.normals, want.normals);
  EXPECT_EQ(got.limited_rows, want.limited_rows);
}

TEST(NnzEstimatorTest, ClassifierFallbackNeverLowersConfidence) {
  const core::ReorganizerConfig config;
  const CsrMatrix a = testing_util::SkewedMatrix(300, 120, 31);
  EstimatedWorkload est = BuildWorkloadEstimated(a, a);
  const double before = est.confidence;
  (void)core::ClassifyEstimated(&est, a, a, config);
  // Straddle fallbacks convert estimated mass to exact mass; the refresh
  // may only move confidence up (to at most 1).
  EXPECT_GE(est.confidence, before - 1e-12);
  EXPECT_LE(est.confidence, 1.0);
}

}  // namespace
}  // namespace spgemm
}  // namespace spnet
