// Fixture: engine -> common is an allowed downward edge.
#ifndef FIXTURE_ENGINE_RUNNER_H_
#define FIXTURE_ENGINE_RUNNER_H_

#include "common/util.h"

inline int64_t FixtureRunner() { return FixtureUtil() + 1; }

#endif  // FIXTURE_ENGINE_RUNNER_H_
