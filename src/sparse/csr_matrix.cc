#include "sparse/csr_matrix.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>

#include "common/parallel.h"

namespace spnet {
namespace sparse {

Result<CsrMatrix> CsrMatrix::FromCoo(const CooMatrix& coo) {
  SPNET_RETURN_IF_ERROR(coo.Validate());
  CooMatrix sorted = coo;
  sorted.SortAndCombine();

  CsrMatrix m;
  m.rows_ = sorted.rows();
  m.cols_ = sorted.cols();
  m.ptr_.assign(static_cast<size_t>(m.rows_) + 1, 0);
  const auto& ri = sorted.row_indices();
  const auto& ci = sorted.col_indices();
  const auto& vv = sorted.values();
  for (Index r : ri) m.ptr_[static_cast<size_t>(r) + 1]++;
  for (size_t r = 0; r < static_cast<size_t>(m.rows_); ++r) {
    m.ptr_[r + 1] += m.ptr_[r];
  }
  m.indices_.assign(ci.begin(), ci.end());
  m.values_.assign(vv.begin(), vv.end());
  return m;
}

Result<CsrMatrix> CsrMatrix::FromParts(Index rows, Index cols,
                                       std::vector<Offset> ptr,
                                       std::vector<Index> indices,
                                       std::vector<Value> values) {
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.ptr_ = std::move(ptr);
  m.indices_ = std::move(indices);
  m.values_ = std::move(values);
  SPNET_RETURN_IF_ERROR(m.Validate());
  return m;
}

CsrMatrix CsrMatrix::Transpose() const {
  CsrMatrix t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  t.ptr_.assign(static_cast<size_t>(cols_) + 1, 0);
  t.indices_.resize(indices_.size());
  t.values_.resize(values_.size());

  ThreadPool& pool = GlobalThreadPool();
  if (pool.threads() == 1 || rows_ == 0) {
    // Count entries per column, then prefix-sum into pointers.
    for (Index c : indices_) t.ptr_[static_cast<size_t>(c) + 1]++;
    for (size_t c = 0; c < static_cast<size_t>(cols_); ++c) {
      t.ptr_[c + 1] += t.ptr_[c];
    }
    // Scatter. `cursor` tracks the next free slot per output row; rows of
    // the transpose come out sorted because we scan input rows in order.
    std::vector<Offset> cursor(t.ptr_.begin(), t.ptr_.end() - 1);
    for (Index r = 0; r < rows_; ++r) {
      for (Offset k = ptr_[r]; k < ptr_[r + 1]; ++k) {
        const Index c = indices_[static_cast<size_t>(k)];
        const Offset slot = cursor[static_cast<size_t>(c)]++;
        t.indices_[static_cast<size_t>(slot)] = r;
        t.values_[static_cast<size_t>(slot)] = values_[static_cast<size_t>(k)];
      }
    }
    return t;
  }

  // Parallel count-scan-scatter over contiguous row chunks (one histogram
  // per chunk). The serial scatter order within a column is input-row
  // order; reserving each chunk its exact sub-range per column reproduces
  // that layout bit-for-bit for any thread count.
  const int64_t grain = GrainForChunkPerThread(rows_, pool.threads());
  const int64_t num_chunks = CeilDiv(rows_, grain);
  std::vector<std::vector<Offset>> chunk_counts(
      static_cast<size_t>(num_chunks));

  SPNET_CHECK_OK(pool.ParallelFor(0, rows_, grain,
                   [&](int64_t row_begin, int64_t row_end, int) {
                     std::vector<Offset>& counts =
                         chunk_counts[static_cast<size_t>(row_begin / grain)];
                     counts.assign(static_cast<size_t>(cols_), 0);
                     for (int64_t r = row_begin; r < row_end; ++r) {
                       for (Offset k = ptr_[static_cast<size_t>(r)];
                            k < ptr_[static_cast<size_t>(r) + 1]; ++k) {
                         counts[static_cast<size_t>(
                             indices_[static_cast<size_t>(k)])]++;
                       }
                     }
                     return Status::Ok();
                   }));

  // Scan: column totals into pointers, then per-chunk starting cursors
  // (chunk k writes column c at ptr[c] + sum of earlier chunks' counts).
  std::vector<std::vector<Offset>> chunk_cursor(
      static_cast<size_t>(num_chunks),
      std::vector<Offset>(static_cast<size_t>(cols_)));
  Offset running = 0;
  for (size_t c = 0; c < static_cast<size_t>(cols_); ++c) {
    t.ptr_[c] = running;
    for (size_t k = 0; k < static_cast<size_t>(num_chunks); ++k) {
      chunk_cursor[k][c] = running;
      running += chunk_counts[k][c];
    }
  }
  t.ptr_[static_cast<size_t>(cols_)] = running;

  // Scatter, same chunking as the count pass.
  SPNET_CHECK_OK(pool.ParallelFor(0, rows_, grain,
                   [&](int64_t row_begin, int64_t row_end, int) {
                     std::vector<Offset>& cursor =
                         chunk_cursor[static_cast<size_t>(row_begin / grain)];
                     for (int64_t r = row_begin; r < row_end; ++r) {
                       for (Offset k = ptr_[static_cast<size_t>(r)];
                            k < ptr_[static_cast<size_t>(r) + 1]; ++k) {
                         const Index c = indices_[static_cast<size_t>(k)];
                         const Offset slot = cursor[static_cast<size_t>(c)]++;
                         t.indices_[static_cast<size_t>(slot)] =
                             static_cast<Index>(r);
                         t.values_[static_cast<size_t>(slot)] =
                             values_[static_cast<size_t>(k)];
                       }
                     }
                     return Status::Ok();
                   }));
  return t;
}

void CsrMatrix::SortRows() {
  std::vector<std::pair<Index, Value>> buf;
  for (Index r = 0; r < rows_; ++r) {
    const Offset begin = ptr_[r];
    const Offset end = ptr_[r + 1];
    buf.clear();
    for (Offset k = begin; k < end; ++k) {
      buf.emplace_back(indices_[static_cast<size_t>(k)],
                       values_[static_cast<size_t>(k)]);
    }
    std::sort(buf.begin(), buf.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (Offset k = begin; k < end; ++k) {
      indices_[static_cast<size_t>(k)] = buf[static_cast<size_t>(k - begin)].first;
      values_[static_cast<size_t>(k)] = buf[static_cast<size_t>(k - begin)].second;
    }
  }
}

bool CsrMatrix::RowsSorted() const {
  for (Index r = 0; r < rows_; ++r) {
    for (Offset k = ptr_[r] + 1; k < ptr_[r + 1]; ++k) {
      if (indices_[static_cast<size_t>(k - 1)] >=
          indices_[static_cast<size_t>(k)]) {
        return false;
      }
    }
  }
  return true;
}

Status CsrMatrix::Validate() const {
  if (rows_ < 0 || cols_ < 0) {
    return Status::InvalidArgument("negative dimension");
  }
  if (ptr_.size() != static_cast<size_t>(rows_) + 1) {
    return Status::InvalidArgument(
        "ptr size " + std::to_string(ptr_.size()) + " != rows+1 " +
        std::to_string(rows_ + 1));
  }
  if (!ptr_.empty() && ptr_.front() != 0) {
    return Status::InvalidArgument("ptr[0] != 0");
  }
  for (size_t r = 0; r + 1 < ptr_.size(); ++r) {
    if (ptr_[r] > ptr_[r + 1]) {
      return Status::InvalidArgument("ptr not monotone at row " +
                                     std::to_string(r));
    }
  }
  if (!ptr_.empty() &&
      ptr_.back() != static_cast<Offset>(indices_.size())) {
    return Status::InvalidArgument("ptr.back() != indices.size()");
  }
  if (indices_.size() != values_.size()) {
    return Status::InvalidArgument("indices/values size mismatch");
  }
  for (Index c : indices_) {
    if (c < 0 || c >= cols_) {
      return Status::OutOfRange("column index " + std::to_string(c) +
                                " out of [0, " + std::to_string(cols_) + ")");
    }
  }
  return Status::Ok();
}

CooMatrix CsrMatrix::ToCoo() const {
  CooMatrix coo(rows_, cols_);
  coo.Reserve(nnz());
  for (Index r = 0; r < rows_; ++r) {
    for (Offset k = ptr_[r]; k < ptr_[r + 1]; ++k) {
      coo.Add(r, indices_[static_cast<size_t>(k)],
              values_[static_cast<size_t>(k)]);
    }
  }
  return coo;
}

CscMatrix CscMatrix::FromCsr(const CsrMatrix& a) {
  CscMatrix m;
  m.rows_ = a.rows();
  m.cols_ = a.cols();
  m.t_ = a.Transpose();
  return m;
}

bool CsrApproxEqual(const CsrMatrix& a, const CsrMatrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  std::vector<Value> acc(static_cast<size_t>(a.cols()), 0.0);
  std::vector<bool> touched(static_cast<size_t>(a.cols()), false);
  for (Index r = 0; r < a.rows(); ++r) {
    const SpanView ra = a.Row(r);
    const SpanView rb = b.Row(r);
    // Accumulate row r of a (duplicates tolerated), subtract row r of b,
    // then verify that every touched position is ~0.
    std::vector<Index> touched_cols;
    for (Offset k = 0; k < ra.size; ++k) {
      const Index c = ra.indices[k];
      if (!touched[static_cast<size_t>(c)]) {
        touched[static_cast<size_t>(c)] = true;
        touched_cols.push_back(c);
      }
      acc[static_cast<size_t>(c)] += ra.values[k];
    }
    for (Offset k = 0; k < rb.size; ++k) {
      const Index c = rb.indices[k];
      if (!touched[static_cast<size_t>(c)]) {
        touched[static_cast<size_t>(c)] = true;
        touched_cols.push_back(c);
      }
      acc[static_cast<size_t>(c)] -= rb.values[k];
    }
    bool row_ok = true;
    for (Index c : touched_cols) {
      if (std::fabs(acc[static_cast<size_t>(c)]) > tol) row_ok = false;
      acc[static_cast<size_t>(c)] = 0.0;
      touched[static_cast<size_t>(c)] = false;
    }
    if (!row_ok) return false;
  }
  return true;
}

}  // namespace sparse
}  // namespace spnet
