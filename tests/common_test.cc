#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <set>
#include <vector>

#include "common/flags.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "common/status.h"

namespace spnet {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dims");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dims");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dims");
}

TEST(StatusTest, FactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(*r, 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveExtractsValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

Result<int> Doubled(Result<int> in) {
  SPNET_ASSIGN_OR_RETURN(int v, in);
  return 2 * v;
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  Result<int> ok = Doubled(Result<int>(21));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> err = Doubled(Result<int>(Status::Internal("boom")));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInternal);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
  EXPECT_EQ(rng.NextBounded(0), 0u);
  EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(MathUtilTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(0, 32), 0);
  EXPECT_EQ(CeilDiv(1, 32), 1);
  EXPECT_EQ(CeilDiv(32, 32), 1);
  EXPECT_EQ(CeilDiv(33, 32), 2);
}

TEST(MathUtilTest, Pow2Helpers) {
  EXPECT_EQ(NextPow2(1), 1);
  EXPECT_EQ(NextPow2(3), 4);
  EXPECT_EQ(NextPow2(32), 32);
  EXPECT_EQ(NextPow2(33), 64);
  EXPECT_EQ(PrevPow2(1), 1);
  EXPECT_EQ(PrevPow2(3), 2);
  EXPECT_EQ(PrevPow2(32), 32);
  EXPECT_EQ(PrevPow2(63), 32);
  EXPECT_TRUE(IsPow2(1));
  EXPECT_TRUE(IsPow2(64));
  EXPECT_FALSE(IsPow2(48));
  EXPECT_EQ(Log2Floor(1), 0);
  EXPECT_EQ(Log2Floor(2), 1);
  EXPECT_EQ(Log2Floor(31), 4);
  EXPECT_EQ(Log2Floor(32), 5);
}

TEST(MathUtilTest, SatAddSaturatesInsteadOfWrapping) {
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
  EXPECT_EQ(SatAddI64(2, 3), 5);
  EXPECT_EQ(SatAddI64(kMax, 1), kMax);
  EXPECT_EQ(SatAddI64(kMax, kMax), kMax);
  EXPECT_EQ(SatAddI64(kMin, -1), kMin);
  EXPECT_EQ(SatAddI64(kMin, kMin), kMin);
  EXPECT_EQ(SatAddI64(kMax, kMin), -1);  // exact, no saturation

  bool saturated = false;
  EXPECT_EQ(SatAddI64(1, 2, &saturated), 3);
  EXPECT_FALSE(saturated);
  EXPECT_EQ(SatAddI64(kMax, 1, &saturated), kMax);
  EXPECT_TRUE(saturated);
  // The flag is sticky: later exact operations must not clear it, so one
  // flag can audit a whole accumulation chain.
  EXPECT_EQ(SatAddI64(1, 1, &saturated), 2);
  EXPECT_TRUE(saturated);
}

TEST(MathUtilTest, SatMulSaturatesWithSignAwareLimits) {
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
  EXPECT_EQ(SatMulI64(6, 7), 42);
  EXPECT_EQ(SatMulI64(0, kMax), 0);
  // Adversarial pair_work shapes: one enormous column times one enormous
  // row must clamp to kMax, not wrap to a small or negative product.
  EXPECT_EQ(SatMulI64(int64_t{1} << 40, int64_t{1} << 40), kMax);
  EXPECT_EQ(SatMulI64(kMax, 2), kMax);
  EXPECT_EQ(SatMulI64(kMax, -2), kMin);
  EXPECT_EQ(SatMulI64(-(int64_t{1} << 40), int64_t{1} << 40), kMin);
  EXPECT_EQ(SatMulI64(-(int64_t{1} << 40), -(int64_t{1} << 40)), kMax);

  bool saturated = false;
  EXPECT_EQ(SatMulI64(1 << 20, 1 << 10, &saturated), int64_t{1} << 30);
  EXPECT_FALSE(saturated);
  EXPECT_EQ(SatMulI64(kMax, kMax, &saturated), kMax);
  EXPECT_TRUE(saturated);
  EXPECT_EQ(SatMulI64(2, 2, &saturated), 4);
  EXPECT_TRUE(saturated);  // sticky, same contract as SatAddI64
}

TEST(FlagsTest, ParsesKeyValueForms) {
  const char* argv[] = {"prog", "pos1", "--alpha=3.5", "--name", "youtube",
                        "--flag"};
  FlagParser flags;
  ASSERT_TRUE(flags.Parse(6, argv).ok());
  EXPECT_DOUBLE_EQ(flags.GetDouble("alpha", 0.0), 3.5);
  EXPECT_EQ(flags.GetString("name", ""), "youtube");
  EXPECT_TRUE(flags.GetBool("flag", false));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "pos1");
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  FlagParser flags;
  ASSERT_TRUE(flags.Parse(1, argv).ok());
  EXPECT_EQ(flags.GetInt("n", 42), 42);
  EXPECT_FALSE(flags.Has("n"));
  EXPECT_FALSE(flags.GetBool("b", false));
}

TEST(FlagsTest, IntegerParsing) {
  const char* argv[] = {"prog", "--n=1000000", "--neg=-5"};
  FlagParser flags;
  ASSERT_TRUE(flags.Parse(3, argv).ok());
  EXPECT_EQ(flags.GetInt("n", 0), 1000000);
  EXPECT_EQ(flags.GetInt("neg", 0), -5);
}

}  // namespace
}  // namespace spnet
