#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "sparse/matrix_market.h"
#include "tests/test_util.h"

namespace spnet {
namespace sparse {
namespace {

TEST(MatrixMarketTest, ParsesGeneralReal) {
  const std::string content =
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 4 3\n"
      "1 1 1.5\n"
      "2 4 -2.0\n"
      "3 2 0.5\n";
  auto m = ParseMatrixMarket(content);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_EQ(m->rows(), 3);
  EXPECT_EQ(m->cols(), 4);
  EXPECT_EQ(m->nnz(), 3);
  EXPECT_DOUBLE_EQ(m->Row(0).values[0], 1.5);
  EXPECT_EQ(m->Row(1).indices[0], 3);
}

TEST(MatrixMarketTest, ParsesPattern) {
  const std::string content =
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 2\n"
      "2 1\n";
  auto m = ParseMatrixMarket(content);
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->Row(0).values[0], 1.0);
  EXPECT_EQ(m->nnz(), 2);
}

TEST(MatrixMarketTest, ExpandsSymmetric) {
  const std::string content =
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 2\n"
      "2 1 5.0\n"
      "3 3 7.0\n";
  auto m = ParseMatrixMarket(content);
  ASSERT_TRUE(m.ok());
  // (2,1) mirrored to (1,2); diagonal (3,3) not duplicated.
  EXPECT_EQ(m->nnz(), 3);
  EXPECT_DOUBLE_EQ(m->Row(0).values[0], 5.0);
  EXPECT_DOUBLE_EQ(m->Row(1).values[0], 5.0);
  EXPECT_DOUBLE_EQ(m->Row(2).values[0], 7.0);
}

TEST(MatrixMarketTest, RejectsMissingBanner) {
  EXPECT_FALSE(ParseMatrixMarket("3 3 0\n").ok());
  EXPECT_FALSE(ParseMatrixMarket("").ok());
}

TEST(MatrixMarketTest, RejectsUnsupportedFormats) {
  EXPECT_FALSE(
      ParseMatrixMarket("%%MatrixMarket matrix array real general\n2 2\n")
          .ok());
  EXPECT_FALSE(ParseMatrixMarket(
                   "%%MatrixMarket matrix coordinate complex general\n"
                   "1 1 1\n1 1 1.0 2.0\n")
                   .ok());
}

TEST(MatrixMarketTest, RejectsOutOfBoundsEntries) {
  const std::string content =
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "3 1 1.0\n";
  EXPECT_FALSE(ParseMatrixMarket(content).ok());
}

TEST(MatrixMarketTest, RejectsTruncatedEntries) {
  const std::string content =
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 1 1.0\n";
  EXPECT_FALSE(ParseMatrixMarket(content).ok());
}

TEST(MatrixMarketTest, OversizedHeaderIsOutOfRange) {
  // Dimensions beyond the 32-bit Index range must be rejected up front
  // instead of wrapping when narrowed.
  const std::string content =
      "%%MatrixMarket matrix coordinate real general\n"
      "4294967296 4294967296 1\n"
      "1 1 1.0\n";
  auto m = ParseMatrixMarket(content);
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kOutOfRange);

  // One dimension in range does not excuse the other.
  auto n = ParseMatrixMarket(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 3000000000 1\n"
      "1 1 1.0\n");
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), StatusCode::kOutOfRange);
}

TEST(MatrixMarketTest, CommentOnlyFileIsInvalidArgument) {
  const std::string content =
      "%%MatrixMarket matrix coordinate real general\n"
      "% comment one\n"
      "% comment two\n";
  auto m = ParseMatrixMarket(content);
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kInvalidArgument);
}

TEST(MatrixMarketTest, ParsesCrlfLineEndings) {
  const std::string content =
      "%%MatrixMarket matrix coordinate real general\r\n"
      "% exported on windows\r\n"
      "2 2 2\r\n"
      "1 1 1.0\r\n"
      "2 2 2.0\r\n";
  auto m = ParseMatrixMarket(content);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_EQ(m->rows(), 2);
  EXPECT_EQ(m->nnz(), 2);
  EXPECT_DOUBLE_EQ(m->Row(1).values[0], 2.0);
}

TEST(MatrixMarketTest, NegativeCharBannerFailsGracefully) {
  // Bytes >= 0x80 are negative as plain char; classification must not
  // hit undefined behaviour and the banner must simply be rejected.
  std::string content =
      "%%MatrixMarket matrix coordinate real general\n"
      "1 1 1\n"
      "1 1 1.0\n";
  content[15] = static_cast<char>(0xE9);  // corrupt "matrix" with é
  auto m = ParseMatrixMarket(content);
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kUnimplemented);
}

TEST(MatrixMarketTest, FileRoundTrip) {
  const CsrMatrix m = testing_util::RandomMatrix(17, 23, 0.15, 5);
  const std::string path = ::testing::TempDir() + "/roundtrip.mtx";
  ASSERT_TRUE(WriteMatrixMarket(m, path).ok());
  auto back = ReadMatrixMarket(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(CsrApproxEqual(m, *back, 1e-6));
  std::remove(path.c_str());
}

TEST(MatrixMarketTest, ReadMissingFileFails) {
  auto r = ReadMatrixMarket("/nonexistent/path/to/matrix.mtx");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace sparse
}  // namespace spnet
