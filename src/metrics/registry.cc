#include "metrics/registry.h"

#include <bit>
#include <cassert>

#include "metrics/json_writer.h"

namespace spnet {
namespace metrics {

namespace {

int BucketIndex(int64_t value) {
  if (value <= 0) return 0;
  // bit_width(1) == 1, bit_width(2..3) == 2, ... so bucket i covers
  // [2^(i-1), 2^i - 1].
  return static_cast<int>(std::bit_width(static_cast<uint64_t>(value)));
}

}  // namespace

void Histogram::Observe(int64_t value) {
  // The instrument's domain is non-negative integers (bucket 0 holds
  // exactly {0}). A negative observation is a caller bug — assert in
  // debug builds, clamp in release so one bad call site cannot drive
  // sum/min below zero and poison every downstream report.
  assert(value >= 0 && "Histogram::Observe takes non-negative values");
  if (value < 0) value = 0;
  const int index =
      BucketIndex(value) < kBuckets ? BucketIndex(value) : kBuckets - 1;
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  int64_t cur = min_.load(std::memory_order_relaxed);
  while (value < cur &&
         !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

int64_t Histogram::min() const {
  const int64_t v = min_.load(std::memory_order_relaxed);
  return v == INT64_MAX ? 0 : v;
}

int64_t Histogram::max() const {
  const int64_t v = max_.load(std::memory_order_relaxed);
  return v == INT64_MIN ? 0 : v;
}

int64_t Histogram::BucketUpperBound(int i) {
  if (i <= 0) return 0;
  if (i >= 63) return INT64_MAX;
  return (int64_t{1} << i) - 1;
}

double Histogram::Percentile(double q) const {
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Snapshot the buckets once; concurrent Observe calls may land between
  // loads, which skews the estimate by at most the in-flight observations
  // — acceptable for a monitoring read.
  int64_t counts[kBuckets];
  int64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  // 1-based rank of the q-quantile observation (nearest-rank definition).
  int64_t rank = static_cast<int64_t>(q * static_cast<double>(total) + 0.5);
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  const double exact_min = static_cast<double>(min());
  const double exact_max = static_cast<double>(max());
  int64_t cumulative = 0;
  for (int i = 0; i < kBuckets; ++i) {
    if (counts[i] == 0) continue;
    cumulative += counts[i];
    if (cumulative < rank) continue;
    const double lower =
        i == 0 ? 0.0 : static_cast<double>(int64_t{1} << (i - 1));
    const double upper = static_cast<double>(BucketUpperBound(i));
    // Position of the rank inside this bucket, at the midpoint of its
    // 1/count slice so a single-entry bucket lands mid-range.
    const int64_t before = cumulative - counts[i];
    const double position = (static_cast<double>(rank - before) - 0.5) /
                            static_cast<double>(counts[i]);
    double value = lower + position * (upper - lower);
    if (value < exact_min) value = exact_min;
    if (value > exact_max) value = exact_max;
    return value;
  }
  return exact_max;  // unreachable: rank <= total
}

Registry::Entry* Registry::FindOrCreate(const std::string& name, Kind kind) {
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    return it->second.kind == kind ? &it->second : nullptr;
  }
  Entry& entry = entries_[name];
  entry.kind = kind;
  switch (kind) {
    case Kind::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      entry.histogram = std::make_unique<Histogram>();
      break;
  }
  return &entry;
}

Counter* Registry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  Entry* entry = FindOrCreate(name, Kind::kCounter);
  return entry == nullptr ? nullptr : entry->counter.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  MutexLock lock(&mu_);
  Entry* entry = FindOrCreate(name, Kind::kGauge);
  return entry == nullptr ? nullptr : entry->gauge.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  MutexLock lock(&mu_);
  Entry* entry = FindOrCreate(name, Kind::kHistogram);
  return entry == nullptr ? nullptr : entry->histogram.get();
}

const Histogram* Registry::FindHistogram(const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.kind != Kind::kHistogram) {
    return nullptr;
  }
  return it->second.histogram.get();
}

void Registry::AddCounter(const std::string& name, int64_t delta) {
  if (Counter* c = GetCounter(name)) c->Add(delta);
}

void Registry::SetGauge(const std::string& name, double value) {
  if (Gauge* g = GetGauge(name)) g->Set(value);
}

void Registry::ObserveHistogram(const std::string& name, int64_t value) {
  if (Histogram* h = GetHistogram(name)) h->Observe(value);
}

std::map<std::string, double> Registry::Snapshot() const {
  MutexLock lock(&mu_);
  std::map<std::string, double> out;
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        out[name] = static_cast<double>(entry.counter->value());
        break;
      case Kind::kGauge:
        out[name] = entry.gauge->value();
        break;
      case Kind::kHistogram:
        out[name + ".count"] = static_cast<double>(entry.histogram->count());
        out[name + ".sum"] = static_cast<double>(entry.histogram->sum());
        break;
    }
  }
  return out;
}

void Registry::AppendJson(JsonWriter* w) const {
  MutexLock lock(&mu_);
  w->BeginObject();
  w->Key("counters").BeginObject();
  for (const auto& [name, entry] : entries_) {
    if (entry.kind != Kind::kCounter) continue;
    w->Key(name).Int(entry.counter->value());
  }
  w->EndObject();
  w->Key("gauges").BeginObject();
  for (const auto& [name, entry] : entries_) {
    if (entry.kind != Kind::kGauge) continue;
    w->Key(name).Double(entry.gauge->value());
  }
  w->EndObject();
  w->Key("histograms").BeginObject();
  for (const auto& [name, entry] : entries_) {
    if (entry.kind != Kind::kHistogram) continue;
    const Histogram& h = *entry.histogram;
    w->Key(name).BeginObject();
    w->Key("count").Int(h.count());
    w->Key("sum").Int(h.sum());
    w->Key("min").Int(h.min());
    w->Key("max").Int(h.max());
    w->Key("buckets").BeginArray();
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      if (h.bucket(i) == 0) continue;
      w->BeginObject();
      w->Key("le").Int(Histogram::BucketUpperBound(i));
      w->Key("count").Int(h.bucket(i));
      w->EndObject();
    }
    w->EndArray();
    w->EndObject();
  }
  w->EndObject();
  w->EndObject();
}

std::string Registry::ToJson() const {
  JsonWriter w;
  AppendJson(&w);
  return w.str();
}

}  // namespace metrics
}  // namespace spnet
