#ifndef SPNET_SERVE_WIRE_H_
#define SPNET_SERVE_WIRE_H_

#include <string>

#include "common/status.h"
#include "engine/request.h"

namespace spnet {
namespace serve {

/// Decoded form of one request line of the spnet_serve wire protocol:
/// newline-delimited JSON, one flat object per request, e.g.
///
///   {"id":"q1","tenant":"t0","source":"as-caida",
///    "algorithm":"reorganizer","priority":1,"deadline_ms":250.0}
///
/// `source` names the matrix the way a batch manifest does (Table II
/// dataset name or .mtx/.spnb path); the daemon resolves it through its
/// MatrixStore, which is why the wire type is distinct from
/// engine::Request (that one carries the loaded matrix). Unknown keys are
/// ignored so additive schema evolution does not break older daemons;
/// `schema_version` guards the non-additive kind.
struct WireRequest {
  int schema_version = engine::kRequestSchemaVersion;
  std::string id;
  std::string tenant = "default";
  int priority = 0;
  double deadline_ms = engine::Request::kInheritDeadline;
  std::string source;
  std::string algorithm = "reorganizer";
};

/// Parses one request line. The parser accepts exactly the flat-object
/// subset the protocol emits — string/number/bool/null scalar values, no
/// nested containers — and reports InvalidArgument with a position for
/// anything else, so a malformed line yields an error response instead of
/// a wedged stream. Requires non-empty "id" and "source"; rejects unknown
/// schema_version.
[[nodiscard]] Result<WireRequest> ParseRequestLine(const std::string& line);

/// Serializes one response line (no trailing newline): the Response's
/// measurement fields plus "ok"/"code"/"message" for the status. The
/// daemon emits exactly one such line per admitted request, plus one for
/// every rejected request (admission errors surface as ok=false lines).
std::string SerializeResponse(const engine::Response& response);

}  // namespace serve
}  // namespace spnet

#endif  // SPNET_SERVE_WIRE_H_
