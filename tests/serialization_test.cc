#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "sparse/serialization.h"
#include "tests/test_util.h"

namespace spnet {
namespace sparse {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(SerializationTest, RoundTripExact) {
  const CsrMatrix m = testing_util::SkewedMatrix(120, 80, 21);
  const std::string path = TempPath("roundtrip.spnb");
  ASSERT_TRUE(WriteBinary(m, path).ok());
  auto back = ReadBinary(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->rows(), m.rows());
  EXPECT_EQ(back->cols(), m.cols());
  EXPECT_EQ(back->nnz(), m.nnz());
  // Bit-exact: same arrays, not just approximate equality.
  EXPECT_EQ(back->ptr(), m.ptr());
  EXPECT_EQ(back->indices(), m.indices());
  EXPECT_EQ(back->values(), m.values());
  std::remove(path.c_str());
}

TEST(SerializationTest, EmptyMatrix) {
  CooMatrix coo(5, 7);
  auto m = CsrMatrix::FromCoo(coo);
  const std::string path = TempPath("empty.spnb");
  ASSERT_TRUE(WriteBinary(*m, path).ok());
  auto back = ReadBinary(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->rows(), 5);
  EXPECT_EQ(back->cols(), 7);
  EXPECT_EQ(back->nnz(), 0);
  std::remove(path.c_str());
}

TEST(SerializationTest, RejectsBadMagic) {
  const std::string path = TempPath("bad_magic.spnb");
  std::ofstream out(path, std::ios::binary);
  out << "not a matrix file at all, just text";
  out.close();
  auto r = ReadBinary(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializationTest, RejectsTruncatedFile) {
  const CsrMatrix m = testing_util::RandomMatrix(50, 50, 0.1, 5);
  const std::string path = TempPath("truncated.spnb");
  ASSERT_TRUE(WriteBinary(m, path).ok());
  // Chop off the tail.
  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(content.data(),
            static_cast<std::streamsize>(content.size() / 2));
  out.close();
  auto r = ReadBinary(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(SerializationTest, RejectsCorruptedStructure) {
  const CsrMatrix m = testing_util::RandomMatrix(30, 30, 0.1, 6);
  const std::string path = TempPath("corrupt.spnb");
  ASSERT_TRUE(WriteBinary(m, path).ok());
  // Flip a pointer entry so the monotone invariant breaks.
  std::fstream f(path,
                 std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(32 + 8);  // header (32B) + ptr[1]
  const int64_t bogus = -5;
  f.write(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  f.close();
  EXPECT_FALSE(ReadBinary(path).ok());
  std::remove(path.c_str());
}

TEST(SerializationTest, MissingFile) {
  auto r = ReadBinary("/nonexistent/dir/matrix.spnb");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace sparse
}  // namespace spnet
