// Reproduces Figure 15 (and prints Table I): mean speedup of every method
// over the row-product baseline on the three simulated devices — Titan Xp,
// Tesla V100 and RTX 2080 Ti — across the 28 real-world datasets.
//
// Flags: --scale (default 0.25), --seed, --csv.

#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "core/suite.h"
#include "metrics/report.h"
#include "spgemm/algorithm.h"

namespace spnet {
namespace {

int Run(int argc, char** argv) {
  const bench::BenchOptions options =
      bench::BenchOptions::FromArgs(argc, argv);
  const gpusim::DeviceSpec devices[] = {gpusim::DeviceSpec::TitanXp(),
                                        gpusim::DeviceSpec::TeslaV100(),
                                        gpusim::DeviceSpec::Rtx2080Ti()};

  // Table I context.
  metrics::Table spec_table({"GPU", "SMs", "clock MHz", "L2 MB",
                             "DRAM GB/s"});
  for (const auto& d : devices) {
    spec_table.AddRow(
        {d.name, std::to_string(d.num_sms),
         metrics::FormatDouble(d.clock_ghz * 1e3, 0),
         metrics::FormatDouble(static_cast<double>(d.l2_size) / 1048576.0, 1),
         metrics::FormatDouble(
             d.dram_bw_bytes_per_cycle * d.clock_ghz, 0)});
  }
  std::printf("== Table I: simulated device configurations ==\n");
  std::fputs(spec_table.ToString().c_str(), stdout);

  const auto algorithms = core::MakeAllAlgorithms();
  std::vector<std::string> header = {"device"};
  for (const auto& alg : algorithms) header.push_back(alg->name());
  metrics::Table table(header);

  for (const auto& device : devices) {
    std::map<std::string, std::vector<double>> speedups;
    for (const std::string& name : bench::AllDatasetNames()) {
      const sparse::CsrMatrix a = bench::LoadDataset(name, options);
      double row_seconds = 0.0;
      for (const auto& alg : algorithms) {
        auto m = spgemm::Measure(*alg, a, a, device);
        SPNET_CHECK(m.ok()) << alg->name();
        if (alg->name() == "row-product") row_seconds = m->total_seconds;
        speedups[alg->name()].push_back(row_seconds / m->total_seconds);
      }
    }
    std::vector<std::string> row = {device.name};
    for (const auto& alg : algorithms) {
      row.push_back(metrics::FormatDouble(
          metrics::GeometricMean(speedups[alg->name()])));
    }
    table.AddRow(std::move(row));
  }

  std::printf("\n== Figure 15: mean speedup over row-product per device "
              "(scale %.2f) ==\n",
              options.scale);
  std::fputs(options.csv ? table.ToCsv().c_str() : table.ToString().c_str(),
             stdout);
  std::printf("\nPaper reference: Block Reorganizer 1.43x (Titan Xp), "
              "1.66x (V100), 1.40x (2080 Ti); the outer-product baseline "
              "stays near the row-product level on every device.\n");

  bench::BenchJson json("fig15_scalability", "Figure 15", options);
  json.AddTable("device_specs", spec_table);
  json.AddTable("mean_speedup_per_device", table);
  json.WriteIfRequested();
  return 0;
}

}  // namespace
}  // namespace spnet

int main(int argc, char** argv) { return spnet::Run(argc, argv); }
