// Fixture: the unsigned char cast idiom never fires char-ctype.
#include <cctype>

namespace spnet {

bool Demo(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0 ||
         std::tolower(static_cast<unsigned char>(c)) == 'a';
}

}  // namespace spnet
