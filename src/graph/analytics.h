#ifndef SPNET_GRAPH_ANALYTICS_H_
#define SPNET_GRAPH_ANALYTICS_H_

#include <vector>

#include "common/status.h"
#include "sparse/csr_matrix.h"
#include "sparse/reorder.h"
#include "spgemm/algorithm.h"

namespace spnet {
namespace graph {

/// The network-analysis kernels the paper's introduction motivates
/// (ranking, similarity computation, recommendation), built on the
/// library's sparse primitives and — where they are spGEMM-shaped — on a
/// pluggable SpGemmAlgorithm so the Block Reorganizer accelerates them.
///
/// Chained workloads (PageRank iterations, repeated-squaring k-hop,
/// triangle counting) optionally take a sparse::ReorderStrategy: the
/// adjacency is symmetrically permuted (P·A·Pᵀ) once up front, every
/// iteration runs in the permuted space, and outputs are mapped back —
/// the one-time reorder cost amortizes across the whole chain.

/// Which edges a traversal follows on a (possibly directed) adjacency.
enum class EdgeDirection {
  kOut,   ///< out-edges only: step u → v when A[u,v] != 0
  kIn,    ///< in-edges only: step u → v when A[v,u] != 0
  kBoth,  ///< either direction, i.e. the underlying undirected graph
};

/// PageRank options.
struct PageRankOptions {
  double damping = 0.85;
  int max_iterations = 100;
  /// L1 change below which iteration stops.
  double tolerance = 1e-9;
  /// Optional locality pre-pass: the adjacency is symmetrically permuted
  /// once before iterating and the scores are mapped back, so the result
  /// is unchanged up to floating-point summation order (accumulations run
  /// over permuted neighbor orders). The reorder cost amortizes across
  /// all iterations.
  sparse::ReorderStrategy reorder = sparse::ReorderStrategy::kNone;
};

struct PageRankResult {
  std::vector<sparse::Value> scores;  ///< length = nodes, sums to ~1
  int iterations = 0;
  double residual = 0.0;  ///< final L1 change
};

/// Power-iteration PageRank on the (possibly weighted) adjacency matrix.
/// Dangling nodes redistribute uniformly.
Result<PageRankResult> PageRank(const sparse::CsrMatrix& adjacency,
                                const PageRankOptions& options = {});

/// Cosine similarity between the rows of `a` (users, documents, nodes):
/// S = N * N^T with N the L2-row-normalized matrix — an spGEMM, executed
/// through `algorithm`. Keeps only the `top_k` most similar peers per row
/// and drops self-similarity.
Result<sparse::CsrMatrix> CosineSimilarity(
    const sparse::CsrMatrix& a, const spgemm::SpGemmAlgorithm& algorithm,
    sparse::Index top_k = 10);

/// Nodes reachable within `hops` steps of each node: the boolean pattern
/// of (A + I)^hops, computed by repeated squaring through `algorithm`.
/// Values in the result are 1.0. `hops` must be >= 1. With a reorder
/// strategy the squaring chain runs in the permuted space and the pattern
/// is mapped back — identical result (patterns are exact), one reorder
/// amortized over log2(hops) multiplies.
Result<sparse::CsrMatrix> KHopReachability(
    const sparse::CsrMatrix& adjacency,
    const spgemm::SpGemmAlgorithm& algorithm, int hops,
    sparse::ReorderStrategy reorder = sparse::ReorderStrategy::kNone);

/// Counts triangles of the *undirected* simple graph underlying
/// `adjacency`: a directed (asymmetric) input is symmetrized internally
/// via the binarized pattern of A ∨ Aᵀ and the diagonal is dropped, so
/// u–v–w counts as a triangle when each pair is connected in at least one
/// direction. Computes sum(A .* A²) / 6 with A² through `algorithm`; the
/// count is exact (integer sums stay below 2^53) and independent of any
/// reorder strategy, which only changes the computation locality.
Result<int64_t> CountTriangles(
    const sparse::CsrMatrix& adjacency,
    const spgemm::SpGemmAlgorithm& algorithm,
    sparse::ReorderStrategy reorder = sparse::ReorderStrategy::kNone);

/// Common-neighbor link prediction scores: for each node, the `top_k`
/// non-adjacent nodes sharing the most neighbors (A^2 masked by the
/// complement of A, diagonal removed). Neighborhoods are those of the
/// underlying undirected graph: a directed input is symmetrized via
/// A ∨ Aᵀ first.
Result<sparse::CsrMatrix> CommonNeighborScores(
    const sparse::CsrMatrix& adjacency,
    const spgemm::SpGemmAlgorithm& algorithm, sparse::Index top_k = 10);

/// BFS levels from `source` following `direction` edges (out-edges by
/// default, matching the historical behavior); unreachable nodes get -1.
Result<std::vector<int>> BfsLevels(
    const sparse::CsrMatrix& adjacency, sparse::Index source,
    EdgeDirection direction = EdgeDirection::kOut);

/// Component labels from flood-fill over `direction` edges, rooted at
/// ascending node ids; label[i] is the smallest node id in i's component.
/// The default kBoth symmetrizes (via the transpose) and yields the
/// standard weakly-connected components of a directed graph — the
/// historical behavior. kOut/kIn give deterministic reachability
/// partitions instead: on a directed graph one-directional reachability
/// is not an equivalence relation, so a node is labeled by the first
/// (lowest-id) root that reaches it.
Result<std::vector<sparse::Index>> ConnectedComponents(
    const sparse::CsrMatrix& adjacency,
    EdgeDirection direction = EdgeDirection::kBoth);

/// Jaccard similarity of node neighborhoods for every adjacent pair:
/// J(u, v) = |N(u) ∩ N(v)| / |N(u) ∪ N(v)|, with the intersection counts
/// computed as the spGEMM A^2 masked by A through `algorithm`.
/// Neighborhoods and adjacency are those of the underlying undirected
/// graph: a directed input is symmetrized via A ∨ Aᵀ first (previously an
/// asymmetric input silently produced wrong overlap/degree math).
Result<sparse::CsrMatrix> JaccardSimilarity(
    const sparse::CsrMatrix& adjacency,
    const spgemm::SpGemmAlgorithm& algorithm);

}  // namespace graph
}  // namespace spnet

#endif  // SPNET_GRAPH_ANALYTICS_H_
