#ifndef SPNET_SPGEMM_NNZ_ESTIMATOR_H_
#define SPNET_SPGEMM_NNZ_ESTIMATOR_H_

#include <cstdint>
#include <vector>

#include "sparse/csr_matrix.h"
#include "spgemm/workload_model.h"

namespace spnet {
namespace spgemm {

/// Knobs of the sampled C-hat estimator. The sampling is a deterministic
/// stride over A's rows (no RNG state): row r is sampled when
/// r % stride == seed % stride, with the stride derived from the target
/// sample size, so the same inputs always produce the same estimate on any
/// thread count.
struct EstimatorOptions {
  /// Fraction of A's rows scanned exactly; in (0, 1].
  double sample_fraction = 0.05;
  /// Never sample fewer rows than this (small matrices converge to exact).
  int64_t min_sample_rows = 64;
  /// Phase of the sampling stride.
  uint64_t seed = 42;
  /// How many of B's heaviest rows are treated as hubs: their contribution
  /// to every C-hat row is summed exactly through a cache-resident value
  /// table, so only the light remainder of each row is estimated. The scan
  /// cost does not depend on this count (the table is indexed, not
  /// searched), so it is set generously: more hubs means tighter row bands
  /// — the light remainder is bounded by the largest non-hub B-row — and
  /// fewer exact fallbacks in the classifier.
  int64_t hub_rows = 4096;
};

/// A Workload built from estimates plus, for every pair and every output
/// row, a *guaranteed* band bracketing the exact value. The bands are hard
/// bounds, not probabilistic intervals:
///   * the pair side is exact: a_col_nnz is one histogram pass over A's
///     indices (the same pass an exact fallback recount would pay), so
///     pair_work, flops and the pair bands all collapse to points;
///   * on the row side, each row's hub contribution (entries hitting one
///     of B's `hub_rows` heaviest rows) is summed exactly; the m remaining
///     light entries are bracketed by [m * min_rest, m * v_rest], where
///     v_rest bounds every non-hub B-row size from above;
///   * sampled rows of A (and rows with no light entries) are exact, so
///     their row band is a point.
/// This is what lets verify::CheckEstimatedClassification be a hard
/// invariant instead of a statistical one: the exact value provably lies
/// in [lo, hi], so any entry whose band clears a classification threshold
/// is classified identically to the exact tier.
struct EstimatedWorkload {
  /// Point estimates in the exact Workload's shape. b_row_nnz, a_col_nnz,
  /// pair_work and flops are exact; row_chat, row_c_est and output_nnz are
  /// estimated (exact where row_exact is set).
  Workload workload;

  /// Bounds on pair_work (length = a.cols()); always collapsed to the
  /// exact value.
  std::vector<int64_t> pair_work_lo;
  std::vector<int64_t> pair_work_hi;
  /// Guaranteed bounds on row_chat (length = a.rows()).
  std::vector<int64_t> row_chat_lo;
  std::vector<int64_t> row_chat_hi;
  /// 1 where workload.row_chat is exact (sampled, hub-only, or
  /// fallback-recomputed).
  std::vector<uint8_t> row_exact;

  /// Fraction of the intermediate mass (flops) whose row attribution is
  /// exactly known — full rows for sampled rows, the hub share elsewhere —
  /// in [0, 1]. 1.0 means the "estimate" is exact.
  double confidence = 1.0;
  /// Numerator of `confidence` (denominator is workload.flops, which is
  /// exact). The classifier's straddle fallbacks add the mass they convert
  /// to exact here and refresh `confidence` from it.
  int64_t exact_mass = 0;

  int64_t sampled_rows = 0;
  /// Classifier denominator populations; the pair count is exact, the row
  /// count is estimated from the row points.
  int64_t estimated_nonzero_pairs = 0;
  int64_t estimated_nonzero_rows = 0;
};

/// Builds the estimated workload view. Same O(nnz + rows + cols) shape as
/// the exact tier, but with much cheaper passes: the per-row gather of
/// b_row_nnz (a random walk over an O(rows_b) table) and the per-row
/// transcendental merge estimator are replaced, for unsampled rows, by a
/// cache-resident hub-flag lookup and a rational approximation. Sampled
/// rows (deterministic stride) are computed exactly and anchor the
/// confidence measure. Deterministic for any thread count.
EstimatedWorkload BuildWorkloadEstimated(const sparse::CsrMatrix& a,
                                         const sparse::CsrMatrix& b,
                                         const EstimatorOptions& options = {},
                                         ExecContext* ctx = nullptr);

}  // namespace spgemm
}  // namespace spnet

#endif  // SPNET_SPGEMM_NNZ_ESTIMATOR_H_
