#ifndef SPNET_SPGEMM_FUNCTIONAL_H_
#define SPNET_SPGEMM_FUNCTIONAL_H_

#include "common/status.h"
#include "sparse/csr_matrix.h"

namespace spnet {
namespace spgemm {

/// Host execution of the row-product scheme: each output row expands its
/// partial products into a row buffer, then merges them with a dense
/// accumulator (Gustavson). Produces unordered CSR rows, like the paper's
/// kernels.
Result<sparse::CsrMatrix> RowProductExpandMerge(const sparse::CsrMatrix& a,
                                                const sparse::CsrMatrix& b);

/// Host execution of the outer-product scheme: the whole intermediate
/// matrix C-hat is materialized pair by pair (column i of A times row i of
/// B), relocated row-major via per-row cursors, then merged row-wise.
/// Materializes flops(A,B) elements; intended for tests and moderate sizes.
Result<sparse::CsrMatrix> OuterProductExpandMerge(const sparse::CsrMatrix& a,
                                                  const sparse::CsrMatrix& b);

}  // namespace spgemm
}  // namespace spnet

#endif  // SPNET_SPGEMM_FUNCTIONAL_H_
