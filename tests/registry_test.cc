#include <gtest/gtest.h>

#include <set>

#include "datasets/registry.h"
#include "sparse/stats.h"

namespace spnet {
namespace datasets {
namespace {

TEST(RegistryTest, TwentyEightDatasetsInPaperOrder) {
  const auto& specs = TableTwoDatasets();
  ASSERT_EQ(specs.size(), 28u);
  EXPECT_EQ(specs.front().name, "filter3D");
  EXPECT_EQ(specs.back().name, "stanford");
  int florida = 0;
  int stanford = 0;
  std::set<std::string> names;
  for (const auto& s : specs) {
    EXPECT_GT(s.dim, 0);
    EXPECT_GT(s.nnz, 0);
    EXPECT_GT(s.paper_nnz_c, 0);
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate " << s.name;
    if (s.family == Family::kFloridaRegular) {
      ++florida;
    } else {
      ++stanford;
    }
  }
  EXPECT_EQ(florida, 19);
  EXPECT_EQ(stanford, 9);
}

TEST(RegistryTest, PublishedSizesMatchPaperTable) {
  auto youtube = FindDataset("youtube");
  ASSERT_TRUE(youtube.ok());
  EXPECT_EQ(youtube->dim, 1100000);
  EXPECT_EQ(youtube->nnz, 2800000);
  EXPECT_EQ(youtube->paper_nnz_c, 148000000);
  auto gowalla = FindDataset("loc-gowalla");
  ASSERT_TRUE(gowalla.ok());
  EXPECT_EQ(gowalla->paper_nnz_c, 456000000);
}

TEST(RegistryTest, FindRejectsUnknown) {
  EXPECT_FALSE(FindDataset("not-a-dataset").ok());
}

TEST(RegistryTest, StanfordListHasTenEntries) {
  const auto names = StanfordDatasetNames();
  EXPECT_EQ(names.size(), 10u);
  for (const auto& n : names) {
    EXPECT_TRUE(FindDataset(n).ok()) << n;
  }
}

TEST(RegistryTest, MaterializeScalesLinearly) {
  auto spec = FindDataset("as-caida");
  ASSERT_TRUE(spec.ok());
  auto quarter = Materialize(*spec, 0.25, 42);
  auto eighth = Materialize(*spec, 0.125, 42);
  ASSERT_TRUE(quarter.ok() && eighth.ok());
  EXPECT_NEAR(static_cast<double>(quarter->rows()),
              0.25 * static_cast<double>(spec->dim), 64);
  EXPECT_NEAR(static_cast<double>(quarter->nnz()) /
                  static_cast<double>(eighth->nnz()),
              2.0, 0.5);
}

TEST(RegistryTest, FamiliesHaveContrastingSkew) {
  auto florida = FindDataset("filter3D");
  auto snap = FindDataset("slashDot");
  ASSERT_TRUE(florida.ok() && snap.ok());
  auto mf = Materialize(*florida, 0.05, 42);
  auto ms = Materialize(*snap, 0.05, 42);
  ASSERT_TRUE(mf.ok() && ms.ok());
  EXPECT_LT(sparse::ComputeRowStats(*mf).gini, 0.25);
  EXPECT_GT(sparse::ComputeRowStats(*ms).gini, 0.5);
}

TEST(RegistryTest, MaterializeRejectsBadScale) {
  auto spec = FindDataset("QCD");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(Materialize(*spec, 0.0).ok());
  EXPECT_FALSE(Materialize(*spec, 5.0).ok());
}

TEST(RegistryTest, TableThreeSuites) {
  const auto& specs = TableThreeDatasets();
  ASSERT_EQ(specs.size(), 12u);
  EXPECT_EQ(specs[0].name, "s1");
  EXPECT_EQ(specs[0].dimension, 250000);
  EXPECT_EQ(specs[0].elements, 62500);
  EXPECT_EQ(specs[3].name, "s4");
  EXPECT_EQ(specs[7].name, "p4");
  EXPECT_DOUBLE_EQ(specs[7].a, 0.57);
  EXPECT_EQ(specs[8].name, "sp1");
  EXPECT_EQ(specs[8].elements, 4000000);
}

TEST(RegistryTest, MaterializeSyntheticRoundsToPow2) {
  const auto& specs = TableThreeDatasets();
  auto m = MaterializeSynthetic(specs[0], 0.05, 42);
  ASSERT_TRUE(m.ok());
  // 250000 * 0.05 = 12500 -> next pow2 = 16384.
  EXPECT_EQ(m->rows(), 16384);
}

TEST(RegistryTest, AbPairDistinctMatrices) {
  auto pair = MaterializeAbPair(10, 42);
  ASSERT_TRUE(pair.ok());
  EXPECT_EQ(pair->a.rows(), 1024);
  EXPECT_EQ(pair->b.rows(), 1024);
  // Edge factor 16.
  EXPECT_NEAR(static_cast<double>(pair->a.nnz()), 16.0 * 1024.0, 2048.0);
  EXPECT_FALSE(sparse::CsrApproxEqual(pair->a, pair->b, 0.0));
}

}  // namespace
}  // namespace datasets
}  // namespace spnet
