#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "sparse/matrix_market.h"
#include "tests/test_util.h"

namespace spnet {
namespace sparse {
namespace {

TEST(MatrixMarketTest, ParsesGeneralReal) {
  const std::string content =
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 4 3\n"
      "1 1 1.5\n"
      "2 4 -2.0\n"
      "3 2 0.5\n";
  auto m = ParseMatrixMarket(content);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_EQ(m->rows(), 3);
  EXPECT_EQ(m->cols(), 4);
  EXPECT_EQ(m->nnz(), 3);
  EXPECT_DOUBLE_EQ(m->Row(0).values[0], 1.5);
  EXPECT_EQ(m->Row(1).indices[0], 3);
}

TEST(MatrixMarketTest, ParsesPattern) {
  const std::string content =
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 2\n"
      "2 1\n";
  auto m = ParseMatrixMarket(content);
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->Row(0).values[0], 1.0);
  EXPECT_EQ(m->nnz(), 2);
}

TEST(MatrixMarketTest, ExpandsSymmetric) {
  const std::string content =
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 2\n"
      "2 1 5.0\n"
      "3 3 7.0\n";
  auto m = ParseMatrixMarket(content);
  ASSERT_TRUE(m.ok());
  // (2,1) mirrored to (1,2); diagonal (3,3) not duplicated.
  EXPECT_EQ(m->nnz(), 3);
  EXPECT_DOUBLE_EQ(m->Row(0).values[0], 5.0);
  EXPECT_DOUBLE_EQ(m->Row(1).values[0], 5.0);
  EXPECT_DOUBLE_EQ(m->Row(2).values[0], 7.0);
}

TEST(MatrixMarketTest, RejectsMissingBanner) {
  EXPECT_FALSE(ParseMatrixMarket("3 3 0\n").ok());
  EXPECT_FALSE(ParseMatrixMarket("").ok());
}

TEST(MatrixMarketTest, RejectsUnsupportedFormats) {
  EXPECT_FALSE(
      ParseMatrixMarket("%%MatrixMarket matrix array real general\n2 2\n")
          .ok());
  EXPECT_FALSE(ParseMatrixMarket(
                   "%%MatrixMarket matrix coordinate complex general\n"
                   "1 1 1\n1 1 1.0 2.0\n")
                   .ok());
}

TEST(MatrixMarketTest, RejectsOutOfBoundsEntries) {
  const std::string content =
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "3 1 1.0\n";
  EXPECT_FALSE(ParseMatrixMarket(content).ok());
}

TEST(MatrixMarketTest, RejectsTruncatedEntries) {
  const std::string content =
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 1 1.0\n";
  EXPECT_FALSE(ParseMatrixMarket(content).ok());
}

TEST(MatrixMarketTest, FileRoundTrip) {
  const CsrMatrix m = testing_util::RandomMatrix(17, 23, 0.15, 5);
  const std::string path = ::testing::TempDir() + "/roundtrip.mtx";
  ASSERT_TRUE(WriteMatrixMarket(m, path).ok());
  auto back = ReadMatrixMarket(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(CsrApproxEqual(m, *back, 1e-6));
  std::remove(path.c_str());
}

TEST(MatrixMarketTest, ReadMissingFileFails) {
  auto r = ReadMatrixMarket("/nonexistent/path/to/matrix.mtx");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace sparse
}  // namespace spnet
