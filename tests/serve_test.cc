// Tests for the serving layer: the BoundedQueue / TokenBucket primitives,
// histogram percentiles, the NDJSON wire codec, and the Server's
// admission-control contract — queue-full rejection, per-tenant quota
// exhaustion, graceful drain, deadline inheritance and the serve.admit
// fault-injection site.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/bounded_queue.h"
#include "common/mutex.h"
#include "common/token_bucket.h"
#include "engine/request.h"
#include "metrics/registry.h"
#include "serve/matrix_store.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "verify/fault_injection.h"

namespace spnet {
namespace serve {
namespace {

using verify::FaultInjector;

/// Guarantees the process-wide injector is disarmed when a test exits,
/// even on assertion failure.
class InjectorGuard {
 public:
  InjectorGuard() { FaultInjector::Global().Reset(); }
  ~InjectorGuard() { FaultInjector::Global().Reset(); }
};

/// Thread-safe response collector with a completion latch: server
/// callbacks run on worker threads, tests block on WaitFor(n).
class ResponseLog {
 public:
  Server::Callback Sink() {
    return [this](const engine::Response& response) {
      MutexLock lock(&mu_);
      responses_.push_back(response);
      arrived_.NotifyAll();
    };
  }

  void WaitFor(size_t n) {
    MutexLock lock(&mu_);
    while (responses_.size() < n) arrived_.Wait(&mu_);
  }

  std::vector<engine::Response> Take() {
    MutexLock lock(&mu_);
    return responses_;
  }

 private:
  Mutex mu_;
  CondVar arrived_;
  std::vector<engine::Response> responses_ GUARDED_BY(mu_);
};

ServeOptions SmallServerOptions() {
  ServeOptions options;
  options.workers = 2;
  options.queue_capacity = 16;
  options.store.load.scale = 0.02;
  return options;
}

WireRequest SmallWire(const std::string& id,
                      const std::string& tenant = "default") {
  WireRequest wire;
  wire.id = id;
  wire.tenant = tenant;
  wire.source = "as-caida";
  return wire;
}

// ------------------------------------------------------------ BoundedQueue

TEST(BoundedQueueTest, PopsHighestPriorityFirstFifoWithinClass) {
  BoundedQueue<int> queue(8);
  EXPECT_TRUE(queue.TryPush(1, /*priority=*/0));
  EXPECT_TRUE(queue.TryPush(2, /*priority=*/5));
  EXPECT_TRUE(queue.TryPush(3, /*priority=*/5));
  EXPECT_TRUE(queue.TryPush(4, /*priority=*/-1));
  int out = 0;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);  // highest class first
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 3);  // FIFO within the class
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 4);
}

TEST(BoundedQueueTest, TryPushRejectsWhenFullWithoutBlocking) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));
  EXPECT_EQ(queue.size(), 2u);
  int out = 0;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_TRUE(queue.TryPush(3));  // capacity freed
}

TEST(BoundedQueueTest, CloseDeliversQueuedItemsThenPopsFalse) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  queue.Close();
  EXPECT_FALSE(queue.TryPush(3));  // closed to producers
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_FALSE(queue.Pop(&out));  // drained: the worker-exit signal
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumer) {
  BoundedQueue<int> queue(4);
  std::atomic<bool> popped{false};
  std::thread consumer([&queue, &popped] {
    int out = 0;
    popped.store(queue.Pop(&out));
  });
  queue.Close();
  consumer.join();
  EXPECT_FALSE(popped.load());
}

// ------------------------------------------------------------- TokenBucket

TEST(TokenBucketTest, ZeroRefillIsAHardCap) {
  // refill 0 makes exhaustion deterministic — no wall clock involved.
  TokenBucket bucket(2.0, 0.0);
  EXPECT_TRUE(bucket.TryAcquire(0.0));
  EXPECT_TRUE(bucket.TryAcquire(0.0));
  EXPECT_FALSE(bucket.TryAcquire(0.0));
  EXPECT_FALSE(bucket.TryAcquire(1e9));  // never refills
}

TEST(TokenBucketTest, RefillsAtConfiguredRateUpToCapacity) {
  TokenBucket bucket(2.0, 1.0);
  EXPECT_TRUE(bucket.TryAcquire(0.0));
  EXPECT_TRUE(bucket.TryAcquire(0.0));
  EXPECT_FALSE(bucket.TryAcquire(0.5));  // only 0.5 tokens back
  EXPECT_TRUE(bucket.TryAcquire(1.5));   // 1.5 tokens accrued
  // Idle time past capacity does not bank extra burst.
  EXPECT_DOUBLE_EQ(bucket.Available(100.0), 2.0);
}

TEST(TokenBucketTest, StaleTimestampCannotMintTokens) {
  TokenBucket bucket(1.0, 1000.0);
  EXPECT_TRUE(bucket.TryAcquire(10.0));
  // A reader with an older clock must not be credited a negative refill
  // or re-credited the interval.
  EXPECT_FALSE(bucket.TryAcquire(10.0));
  EXPECT_FALSE(bucket.TryAcquire(9.0));
}

TEST(TokenBucketTest, NonPositiveCapacityIsUnlimited) {
  TokenBucket bucket(0.0, 0.0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(bucket.TryAcquire(0.0));
}

TEST(TokenBucketTest, TinyRefillAccruesAcrossPollsWithoutStarvation) {
  // Regression guard: a very small refill rate polled at fine granularity
  // must accumulate fractional tokens across calls — per-poll increments
  // far below one token cannot be silently rounded away, or a low-rate
  // tenant would starve forever. Powers of two keep the arithmetic exact
  // so the assertions are deterministic.
  TokenBucket bucket(1.0, 1.0 / 1024.0);  // ~17 minutes per token
  EXPECT_TRUE(bucket.TryAcquire(0.0));    // drain the burst token
  for (int i = 1; i < 1024; ++i) {
    // Each poll refills by exactly 1/1024 of a token; none reaches 1.
    EXPECT_FALSE(bucket.TryAcquire(static_cast<double>(i))) << "poll " << i;
  }
  EXPECT_TRUE(bucket.TryAcquire(1024.0));   // exactly one token accrued
  EXPECT_FALSE(bucket.TryAcquire(1024.0));  // and it was spent whole
  EXPECT_DOUBLE_EQ(bucket.Available(1536.0), 0.5);
}

// --------------------------------------------------- Histogram percentiles

TEST(HistogramPercentileTest, EmptyIsZeroAndSingleValueIsExact) {
  metrics::Histogram h;
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);
  h.Observe(42);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 42.0);
}

TEST(HistogramPercentileTest, QuantilesAreMonotoneAndClampedToMinMax) {
  metrics::Histogram h;
  for (int64_t v = 1; v <= 1000; ++v) h.Observe(v);
  const double p50 = h.Percentile(0.50);
  const double p99 = h.Percentile(0.99);
  const double p999 = h.Percentile(0.999);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, p999);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p999, 1000.0);
  // Log2 buckets bound the relative error to one power of two.
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 1023.0);
  EXPECT_GE(p99, 512.0);
}

// -------------------------------------------------------------------- wire

TEST(WireTest, ParsesEveryField) {
  auto wire = ParseRequestLine(
      "{\"schema_version\":1,\"id\":\"q7\",\"tenant\":\"team-a\","
      "\"priority\":3,\"deadline_ms\":250.5,\"source\":\"as-caida\","
      "\"algorithm\":\"row-product\"}");
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  EXPECT_EQ(wire->schema_version, 1);
  EXPECT_EQ(wire->id, "q7");
  EXPECT_EQ(wire->tenant, "team-a");
  EXPECT_EQ(wire->priority, 3);
  EXPECT_DOUBLE_EQ(wire->deadline_ms, 250.5);
  EXPECT_EQ(wire->source, "as-caida");
  EXPECT_EQ(wire->algorithm, "row-product");
}

TEST(WireTest, DefaultsAndUnknownKeysAreAdditive) {
  auto wire = ParseRequestLine(
      "{\"id\":\"q1\",\"source\":\"as-caida\",\"future_field\":true}");
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  EXPECT_EQ(wire->schema_version, engine::kRequestSchemaVersion);
  EXPECT_EQ(wire->tenant, "default");
  EXPECT_EQ(wire->priority, 0);
  EXPECT_DOUBLE_EQ(wire->deadline_ms, engine::Request::kInheritDeadline);
}

TEST(WireTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseRequestLine("").ok());
  EXPECT_FALSE(ParseRequestLine("not json").ok());
  EXPECT_FALSE(ParseRequestLine("{\"id\":\"q\"}").ok());  // no source
  EXPECT_FALSE(
      ParseRequestLine("{\"source\":\"as-caida\"}").ok());  // no id
  EXPECT_FALSE(ParseRequestLine("{\"id\":\"q\",\"source\":\"s\","
                                "\"schema_version\":99}")
                   .ok());
  EXPECT_FALSE(ParseRequestLine("{\"id\":\"q\",\"source\":\"s\","
                                "\"nested\":{\"a\":1}}")
                   .ok());
}

TEST(WireTest, SerializeResponseCarriesStatusAndMeasurements) {
  engine::Response response;
  response.id = "q1";
  response.tenant = "t0";
  response.status = Status::DeadlineExceeded("too slow");
  response.algorithm_used = "reorganizer";
  response.wall_ms = 1.5;
  const std::string line = SerializeResponse(response);
  EXPECT_NE(line.find("\"id\":\"q1\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"tenant\":\"t0\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"ok\":false"), std::string::npos) << line;
  EXPECT_NE(line.find("DeadlineExceeded"), std::string::npos) << line;
  EXPECT_NE(line.find("too slow"), std::string::npos) << line;
  // One line per response: embedded newlines would corrupt the stream.
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

// ------------------------------------------------------------------ Server

TEST(ServerTest, ExecutesRequestsAndHitsSharedPlanCache) {
  Server server(SmallServerOptions());
  ASSERT_TRUE(server.Start().ok());
  ResponseLog log;
  ASSERT_TRUE(server.SubmitWire(SmallWire("q1"), log.Sink()).ok());
  log.WaitFor(1);
  ASSERT_TRUE(server.SubmitWire(SmallWire("q2"), log.Sink()).ok());
  log.WaitFor(2);
  server.Drain();

  const auto responses = log.Take();
  ASSERT_EQ(responses.size(), 2u);
  for (const engine::Response& r : responses) {
    EXPECT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_EQ(r.algorithm_used, "reorganizer");
    EXPECT_GT(r.sim_ms, 0.0);
  }
  // q2 reused q1's plan through the shared cache.
  EXPECT_FALSE(responses[0].plan_cache_hit);
  EXPECT_TRUE(responses[1].plan_cache_hit);
  EXPECT_EQ(server.plan_cache().hits(), 1);
}

TEST(ServerTest, QuotaExhaustionRejectsWithResourceExhausted) {
  ServeOptions options = SmallServerOptions();
  options.default_quota.capacity = 2.0;
  options.default_quota.refill_per_sec = 0.0;  // deterministic: never refills
  Server server(options);
  ASSERT_TRUE(server.Start().ok());
  ResponseLog log;
  ASSERT_TRUE(server.SubmitWire(SmallWire("q1", "capped"), log.Sink()).ok());
  ASSERT_TRUE(server.SubmitWire(SmallWire("q2", "capped"), log.Sink()).ok());
  const Status third =
      server.SubmitWire(SmallWire("q3", "capped"), log.Sink());
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(third.message().find("quota"), std::string::npos)
      << third.ToString();
  // Quotas are per tenant: another tenant is unaffected by the default
  // bucket being drained for "capped" only.
  ASSERT_TRUE(server.SubmitWire(SmallWire("q4", "other"), log.Sink()).ok());
  log.WaitFor(3);  // the two admitted + the other tenant's
  server.Drain();
  const auto snapshot = server.registry().Snapshot();
  EXPECT_EQ(snapshot.at("serve.rejected.quota"), 1);
  EXPECT_EQ(snapshot.at("serve.tenant.capped.rejected"), 1);
  EXPECT_EQ(snapshot.at("serve.tenant.capped.admitted"), 2);
}

TEST(ServerTest, FullQueueRejectsWithResourceExhausted) {
  ServeOptions options = SmallServerOptions();
  options.workers = 1;
  options.queue_capacity = 1;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());

  // Stall the single worker inside the first request's callback so the
  // queue state is deterministic: q2 occupies the only slot, q3 must be
  // rejected without blocking.
  Mutex mu;
  CondVar cv;
  bool in_callback = false;
  bool release = false;
  ASSERT_TRUE(server
                  .SubmitWire(SmallWire("q1"),
                              [&](const engine::Response&) {
                                MutexLock lock(&mu);
                                in_callback = true;
                                cv.NotifyAll();
                                while (!release) cv.Wait(&mu);
                              })
                  .ok());
  {
    MutexLock lock(&mu);
    while (!in_callback) cv.Wait(&mu);
  }
  ResponseLog log;
  ASSERT_TRUE(server.SubmitWire(SmallWire("q2"), log.Sink()).ok());
  const Status third = server.SubmitWire(SmallWire("q3"), log.Sink());
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(third.message().find("queue full"), std::string::npos)
      << third.ToString();
  {
    MutexLock lock(&mu);
    release = true;
    cv.NotifyAll();
  }
  log.WaitFor(1);
  server.Drain();
  EXPECT_EQ(server.registry().Snapshot().at("serve.rejected.queue_full"), 1);
}

TEST(ServerTest, DrainCompletesInFlightAndRejectsNewWork) {
  Server server(SmallServerOptions());
  ASSERT_TRUE(server.Start().ok());
  ResponseLog log;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        server.SubmitWire(SmallWire("q" + std::to_string(i)), log.Sink())
            .ok());
  }
  server.BeginDrain();
  const Status late = server.SubmitWire(SmallWire("late"), log.Sink());
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.code(), StatusCode::kFailedPrecondition);
  server.Drain();
  // Every admitted request completed; the late one never ran.
  const auto responses = log.Take();
  ASSERT_EQ(responses.size(), 6u);
  for (const engine::Response& r : responses) {
    EXPECT_TRUE(r.status.ok()) << r.id << ": " << r.status.ToString();
  }
  EXPECT_EQ(server.in_flight(), 0);
  const auto snapshot = server.registry().Snapshot();
  EXPECT_EQ(snapshot.at("serve.completed"), 6);
  EXPECT_EQ(snapshot.at("serve.rejected.draining"), 1);
}

TEST(ServerTest, DeadlineInheritsEngineDefaultThroughRequest) {
  ServeOptions options = SmallServerOptions();
  options.engine.default_deadline_ms = 1e-6;  // expires at the first check
  Server server(options);
  ASSERT_TRUE(server.Start().ok());
  ResponseLog log;
  // kInheritDeadline (the wire default) picks up the engine default...
  ASSERT_TRUE(server.SubmitWire(SmallWire("inherit"), log.Sink()).ok());
  // ...while an explicit generous per-request budget overrides it.
  WireRequest generous = SmallWire("explicit");
  generous.deadline_ms = 1e9;
  ASSERT_TRUE(server.SubmitWire(generous, log.Sink()).ok());
  log.WaitFor(2);
  server.Drain();
  for (const engine::Response& r : log.Take()) {
    if (r.id == "inherit") {
      EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded)
          << r.status.ToString();
    } else {
      EXPECT_TRUE(r.status.ok()) << r.status.ToString();
    }
  }
}

TEST(ServerTest, AdmitFaultInjectionRejectsAtTheAdmissionGate) {
  InjectorGuard guard;
  Server server(SmallServerOptions());
  ASSERT_TRUE(server.Start().ok());
  FaultInjector::Global().Arm(verify::kSiteServeAdmit, /*first=*/1,
                              /*count=*/1, StatusCode::kResourceExhausted);
  ResponseLog log;
  const Status injected = server.SubmitWire(SmallWire("q1"), log.Sink());
  ASSERT_FALSE(injected.ok());
  EXPECT_EQ(injected.code(), StatusCode::kResourceExhausted);
  // The window closed: the next submit is admitted normally.
  ASSERT_TRUE(server.SubmitWire(SmallWire("q2"), log.Sink()).ok());
  log.WaitFor(1);
  server.Drain();
  EXPECT_EQ(server.registry().Snapshot().at("serve.rejected.injected"), 1);
}

TEST(ServerTest, UnknownSourceIsRejectedAtSubmit) {
  Server server(SmallServerOptions());
  ASSERT_TRUE(server.Start().ok());
  ResponseLog log;
  WireRequest wire = SmallWire("q1");
  wire.source = "no-such-dataset";
  const Status s = server.SubmitWire(wire, log.Sink());
  ASSERT_FALSE(s.ok());
  server.Drain();
  EXPECT_EQ(server.registry().Snapshot().at("serve.rejected.source"), 1);
}

TEST(ServerTest, SubmitBeforeStartFailsAndStartPinsSources) {
  ServeOptions options = SmallServerOptions();
  options.pinned_sources.push_back("as-caida");
  Server server(options);
  ResponseLog log;
  EXPECT_FALSE(server.SubmitWire(SmallWire("early"), log.Sink()).ok());
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.matrix_store().pinned(), 1u);
  server.Drain();
}

TEST(ServerTest, StatsJsonNeverZeroFillsUnobservedPercentiles) {
  // An idle server's stats read must not materialize latency instruments
  // (FindHistogram, not GetHistogram) and must never spell "no data yet"
  // as 0.0 percentiles — a dashboard would read that as "instant".
  Server server(SmallServerOptions());
  ASSERT_TRUE(server.Start().ok());
  const std::string cold = server.StatsJson();
  for (const char* name :
       {"serve.queue_us", "serve.exec_us", "serve.latency_us"}) {
    EXPECT_EQ(cold.find(name), std::string::npos) << cold;
  }
  EXPECT_EQ(cold.find("p50"), std::string::npos) << cold;
  // The read itself created nothing: a second read is identical.
  EXPECT_EQ(server.StatsJson(), cold);

  ResponseLog log;
  ASSERT_TRUE(server.SubmitWire(SmallWire("q1"), log.Sink()).ok());
  log.WaitFor(1);
  server.Drain();
  const std::string warm = server.StatsJson();
  for (const char* name :
       {"serve.queue_us", "serve.exec_us", "serve.latency_us"}) {
    EXPECT_NE(warm.find(name), std::string::npos) << warm;
  }
  // One observation per histogram: real percentiles, no null sentinels.
  EXPECT_NE(warm.find("p50"), std::string::npos) << warm;
  EXPECT_EQ(warm.find("null"), std::string::npos) << warm;
}

// -------------------------------------------------------------- MatrixStore

MatrixStore::Options SmallStoreOptions(size_t capacity) {
  MatrixStore::Options options;
  options.load.scale = 0.02;
  options.capacity = capacity;
  return options;
}

TEST(MatrixStoreTest, PinnedSourcesSurviveEvictionPressure) {
  MatrixStore store(SmallStoreOptions(/*capacity=*/1));
  ASSERT_TRUE(store.Pin("as-caida").ok());
  // Churn unpinned sources through the capacity-1 LRU.
  ASSERT_TRUE(store.Get("epinions").ok());
  ASSERT_TRUE(store.Get("loc-gowalla").ok());  // evicts epinions
  ASSERT_TRUE(store.Get("scircuit").ok());    // evicts loc-gowalla
  EXPECT_EQ(store.evictions(), 2);
  EXPECT_EQ(store.pinned(), 1u);
  EXPECT_EQ(store.size(), 2u);  // the pin plus one unpinned resident
  // The pinned source never left residency and never counted against the
  // unpinned capacity.
  ASSERT_TRUE(store.Get("as-caida").ok());
  EXPECT_EQ(store.evictions(), 2);
  EXPECT_EQ(store.size(), 2u);
}

TEST(MatrixStoreTest, PinningResidentEntryPromotesItOutOfTheLru) {
  MatrixStore store(SmallStoreOptions(/*capacity=*/2));
  ASSERT_TRUE(store.Get("epinions").ok());
  ASSERT_TRUE(store.Get("loc-gowalla").ok());
  // epinions is the LRU tail; pinning it mid-pressure removes it from
  // eviction candidacy entirely.
  ASSERT_TRUE(store.Pin("epinions").ok());
  EXPECT_EQ(store.pinned(), 1u);
  ASSERT_TRUE(store.Get("scircuit").ok());  // fills the freed unpinned slot
  EXPECT_EQ(store.evictions(), 0);
  // Now the oldest unpinned entry (loc-gowalla) goes.
  ASSERT_TRUE(store.Get("sx-mathoverflow").ok());
  EXPECT_EQ(store.evictions(), 1);
  EXPECT_EQ(store.size(), 3u);  // the pin + {scircuit, sx-mathoverflow}
}

TEST(MatrixStoreTest, UnpinDemotesToMruAndRestoresCapacityAccounting) {
  MatrixStore store(SmallStoreOptions(/*capacity=*/1));
  ASSERT_TRUE(store.Pin("epinions").ok());
  ASSERT_TRUE(store.Get("loc-gowalla").ok());  // the single unpinned slot
  // Demotion re-enters the LRU as most recently used; the store is now
  // one over capacity and must evict the true tail (loc-gowalla), not
  // the entry that was just demoted.
  ASSERT_TRUE(store.Unpin("epinions").ok());
  EXPECT_EQ(store.pinned(), 0u);
  EXPECT_EQ(store.evictions(), 1);
  EXPECT_EQ(store.size(), 1u);
  ASSERT_TRUE(store.Get("epinions").ok());  // still resident, no reload needed
  EXPECT_EQ(store.evictions(), 1);

  // Bookkeeping errors are typed: unpinning an unpinned resident entry is
  // a precondition failure, unpinning an absent source is NotFound.
  EXPECT_EQ(store.Unpin("epinions").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(store.Unpin("absent").code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace serve
}  // namespace spnet
