// Fixture: legacy-batch-query stays quiet on non-construction mentions —
// passing the legacy type by reference through the adapters is legal; only
// building new instances outside src/engine is flagged.

namespace spnet {
namespace engine {
struct BatchQuery;
struct Request {
  const char* id = nullptr;
};
Request RequestFromQuery(const BatchQuery& query);
}  // namespace engine

engine::Request Convert(const engine::BatchQuery& query) {
  return engine::RequestFromQuery(query);
}

}  // namespace spnet
