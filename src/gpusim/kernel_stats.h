#ifndef SPNET_GPUSIM_KERNEL_STATS_H_
#define SPNET_GPUSIM_KERNEL_STATS_H_

#include <cstdint>
#include <vector>

namespace spnet {
namespace gpusim {

/// Counters produced by simulating one kernel launch — the simulator's
/// equivalent of an nvprof profile.
struct KernelStats {
  double cycles = 0.0;  ///< kernel wall time in device cycles
  double seconds = 0.0;

  /// Busy cycles per SM (for LBI / utilization, paper Eq. 3 & Fig. 3a).
  std::vector<double> sm_busy_cycles;

  int64_t num_blocks = 0;
  int64_t num_warps = 0;

  /// Lane-slot accounting for the sync-stall metric (Fig. 13).
  int64_t useful_lane_ops = 0;
  int64_t issued_lane_slots = 0;  ///< warp_issue_ops * 32, summed

  /// Memory traffic split by where it was served.
  int64_t l2_read_bytes = 0;
  int64_t l2_write_bytes = 0;
  int64_t dram_bytes = 0;

  /// Mean resident thread blocks per SM while the kernel ran.
  double avg_resident_blocks = 0.0;

  /// Fraction of issued lane slots that did no useful work.
  double SyncStallFraction() const {
    if (issued_lane_slots == 0) return 0.0;
    return 1.0 -
           static_cast<double>(useful_lane_ops) /
               static_cast<double>(issued_lane_slots);
  }

  /// Achieved L2 read throughput in GB/s.
  double L2ReadThroughputGBs() const {
    if (seconds <= 0.0) return 0.0;
    return static_cast<double>(l2_read_bytes) / seconds / 1e9;
  }

  /// Achieved L2 write throughput in GB/s.
  double L2WriteThroughputGBs() const {
    if (seconds <= 0.0) return 0.0;
    return static_cast<double>(l2_write_bytes) / seconds / 1e9;
  }

  /// Load balancing index, paper Eq. (3): mean SM busy time normalized by
  /// the maximum SM busy time.
  double Lbi() const;

  /// Fraction of SM-cycles that were busy until the last block retired.
  double SmUtilization() const;

  /// Merges another kernel's counters into this one (phases of a pipeline).
  void Accumulate(const KernelStats& other);
};

}  // namespace gpusim
}  // namespace spnet

#endif  // SPNET_GPUSIM_KERNEL_STATS_H_
