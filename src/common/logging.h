#ifndef SPNET_COMMON_LOGGING_H_
#define SPNET_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace spnet {
namespace internal_logging {

enum class LogLevel { kInfo, kWarning, kError, kFatal };

/// Stream-style log sink; writes a single line to stderr on destruction.
/// kFatal aborts the process after flushing.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << LevelTag() << " " << base << ":" << line << "] ";
  }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  ~LogMessage() {
    stream_ << "\n";
    std::fputs(stream_.str().c_str(), stderr);
    std::fflush(stderr);
    if (level_ == LogLevel::kFatal) std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  const char* LevelTag() const {
    switch (level_) {
      case LogLevel::kInfo:
        return "I";
      case LogLevel::kWarning:
        return "W";
      case LogLevel::kError:
        return "E";
      case LogLevel::kFatal:
        return "F";
    }
    return "?";
  }

  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace spnet

#define SPNET_LOG_INFO                                                   \
  ::spnet::internal_logging::LogMessage(                                 \
      ::spnet::internal_logging::LogLevel::kInfo, __FILE__, __LINE__)    \
      .stream()
#define SPNET_LOG_WARNING                                                \
  ::spnet::internal_logging::LogMessage(                                 \
      ::spnet::internal_logging::LogLevel::kWarning, __FILE__, __LINE__) \
      .stream()
#define SPNET_LOG_ERROR                                                  \
  ::spnet::internal_logging::LogMessage(                                 \
      ::spnet::internal_logging::LogLevel::kError, __FILE__, __LINE__)   \
      .stream()
#define SPNET_LOG_FATAL                                                  \
  ::spnet::internal_logging::LogMessage(                                 \
      ::spnet::internal_logging::LogLevel::kFatal, __FILE__, __LINE__)   \
      .stream()

/// Invariant check that is active in all build types. Use for conditions
/// that indicate a library bug rather than bad user input.
#define SPNET_CHECK(cond)                                        \
  if (!(cond)) SPNET_LOG_FATAL << "Check failed: " #cond " "

#endif  // SPNET_COMMON_LOGGING_H_
