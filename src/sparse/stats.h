#ifndef SPNET_SPARSE_STATS_H_
#define SPNET_SPARSE_STATS_H_

#include <cstdint>
#include <vector>

#include "sparse/csr_matrix.h"
#include "sparse/types.h"

namespace spnet {
namespace sparse {

/// Summary statistics of a sparse matrix's row-degree distribution.
/// Skew metrics drive the Florida-vs-Stanford distinction in the paper:
/// sparse networks have power-law degrees (high Gini / CV), matrices from
/// physical meshes are quasi-regular (low Gini / CV).
struct DegreeStats {
  Offset min_nnz = 0;
  Offset max_nnz = 0;
  double mean_nnz = 0.0;
  double cv = 0.0;    ///< coefficient of variation (stddev / mean)
  double gini = 0.0;  ///< Gini coefficient of the degree distribution
  /// Fraction of rows with fewer than 32 nonzeros (warp size); the supply
  /// of "low performer" blocks in the paper's terminology.
  double frac_rows_below_warp = 0.0;
};

/// Computes degree statistics over the rows of m.
DegreeStats ComputeRowStats(const CsrMatrix& m);

/// Number of multiply operations of A*B: sum over nonzeros a_rc of
/// nnz(B row c). Also the size of the intermediate C-hat (before merge).
int64_t SpGemmFlops(const CsrMatrix& a, const CsrMatrix& b);

/// Per-row multiply counts of A*B (length a.rows()); row r's expansion work.
std::vector<int64_t> SpGemmRowFlops(const CsrMatrix& a, const CsrMatrix& b);

/// Per-pair outer-product workloads: for pair i (column i of A, row i of B),
/// work[i] = nnz(A col i) * nnz(B row i). This is the block-wise nnz the
/// Block Reorganizer precalculates. Length: a.cols() == b.rows().
std::vector<int64_t> OuterProductPairWork(const CsrMatrix& a,
                                          const CsrMatrix& b);

/// Histogram of row nnz in power-of-two buckets: bucket k counts rows with
/// nnz in [2^k, 2^(k+1)); bucket 0 also counts nnz==1, and rows with 0 nnz
/// are reported separately in `empty_rows`.
struct DegreeHistogram {
  std::vector<int64_t> buckets;
  int64_t empty_rows = 0;
};
DegreeHistogram ComputeRowHistogram(const CsrMatrix& m);

}  // namespace sparse
}  // namespace spnet

#endif  // SPNET_SPARSE_STATS_H_
