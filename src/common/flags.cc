#include "common/flags.h"

#include <cstdlib>

namespace spnet {

Status FlagParser::Parse(int argc, const char* const* argv) {
  return Parse(argc, argv, {});
}

Status FlagParser::Parse(int argc, const char* const* argv,
                         const std::set<std::string>& boolean_flags) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    if (arg.empty()) {
      return Status::InvalidArgument("empty flag name");
    }
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (boolean_flags.count(arg) > 0) {
      values_[arg] = "true";
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
  return Status::Ok();
}

bool FlagParser::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

int64_t FlagParser::GetInt(const std::string& name,
                           int64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double FlagParser::GetDouble(const std::string& name,
                             double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return std::strtod(it->second.c_str(), nullptr);
}

bool FlagParser::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

}  // namespace spnet
