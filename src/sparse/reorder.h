#ifndef SPNET_SPARSE_REORDER_H_
#define SPNET_SPARSE_REORDER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sparse/csr_matrix.h"
#include "sparse/types.h"

namespace spnet {
namespace sparse {

/// Row/column reordering strategies applied ahead of spGEMM (Islam & Dai:
/// permuting structurally similar rows next to each other improves locality
/// beyond what block-level surgery reaches).
///   * kNone: identity, the unpermuted baseline.
///   * kDegree: rows sorted by descending nonzero count (hubs first), the
///     classic bandwidth-of-work concentration order.
///   * kRcm: reverse Cuthill–McKee via breadth-first traversal of the
///     row-connectivity graph (rows are adjacent when they share a column),
///     generalized to rectangular matrices through the bipartite row/column
///     graph. Ascending-degree tie-breaks inside each BFS level, whole
///     order reversed.
///   * kCluster: rows grouped by column-pattern similarity using
///     deterministic min-hash signatures over the column ids — rows whose
///     patterns overlap tend to land in the same neighborhood.
enum class ReorderStrategy {
  kNone = 0,
  kDegree = 1,
  kRcm = 2,
  kCluster = 3,
};

/// Canonical flag spelling ("none" | "degree" | "rcm" | "cluster").
const char* ReorderStrategyName(ReorderStrategy strategy);

/// Inverse of ReorderStrategyName; InvalidArgument on unknown spellings.
Result<ReorderStrategy> ParseReorderStrategy(const std::string& name);

/// Every strategy including kNone, in declaration order — the sweep axis
/// for ablations and benches.
const std::vector<ReorderStrategy>& AllReorderStrategies();

/// A permutation of n positions, stored both ways (new->old and old->new)
/// so application and inversion are O(1) lookups. The defining convention:
/// position i of a permuted object holds what position `OldOf(i)` held in
/// the original.
class Permutation {
 public:
  Permutation() = default;

  /// The identity permutation on n positions.
  static Permutation Identity(Index n);

  /// Builds from a new->old map; InvalidArgument unless it is a bijection
  /// of [0, n).
  static Result<Permutation> FromNewToOld(std::vector<Index> new_to_old);

  Index size() const { return static_cast<Index>(new_to_old_.size()); }
  bool IsIdentity() const;

  /// Original position of the element now at `new_pos`.
  Index OldOf(Index new_pos) const {
    return new_to_old_[static_cast<size_t>(new_pos)];
  }
  /// Position the element originally at `old_pos` moved to.
  Index NewOf(Index old_pos) const {
    return old_to_new_[static_cast<size_t>(old_pos)];
  }

  const std::vector<Index>& new_to_old() const { return new_to_old_; }

  /// The inverse permutation: Inverse().OldOf(i) == NewOf(i).
  Permutation Inverse() const;

  /// Composition: applying the result once is the same as applying
  /// `before` first, then `after`. Sizes must match.
  static Result<Permutation> Compose(const Permutation& after,
                                     const Permutation& before);

  /// Permutes the rows of m: row i of the result is m.Row(OldOf(i)).
  /// Within-row entry order (and values) are untouched, so sorted rows
  /// stay sorted and numeric content is bit-identical. Requires
  /// m.rows() == size().
  Result<CsrMatrix> ApplyToRows(const CsrMatrix& m) const;

  /// Permutes the columns of m: old column c becomes column NewOf(c).
  /// Rows are re-sorted by the new column ids; values are moved, never
  /// recombined. Requires m.cols() == size().
  Result<CsrMatrix> ApplyToCols(const CsrMatrix& m) const;

  /// Permutes a dense per-position vector: out[i] = v[OldOf(i)].
  /// Requires v.size() == size().
  template <typename T>
  Result<std::vector<T>> Apply(const std::vector<T>& v) const {
    if (v.size() != new_to_old_.size()) {
      return Status::InvalidArgument(
          "permutation size " + std::to_string(new_to_old_.size()) +
          " does not match vector size " + std::to_string(v.size()));
    }
    std::vector<T> out(v.size());
    for (size_t i = 0; i < v.size(); ++i) {
      out[i] = v[static_cast<size_t>(new_to_old_[i])];
    }
    return out;
  }

 private:
  std::vector<Index> new_to_old_;
  std::vector<Index> old_to_new_;
};

/// Builds the row permutation `strategy` prescribes for m. Deterministic:
/// every tie is broken by ascending row id. kNone returns the identity.
Result<Permutation> BuildRowPermutation(const CsrMatrix& m,
                                        ReorderStrategy strategy);

/// Builds the column permutation for the other side of a product: the
/// strategy is applied to the rows of m^T (i.e. to m's column patterns).
Result<Permutation> BuildColPermutation(const CsrMatrix& m,
                                        ReorderStrategy strategy);

}  // namespace sparse
}  // namespace spnet

#endif  // SPNET_SPARSE_REORDER_H_
