#include "metrics/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace spnet {
namespace metrics {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  SPNET_CHECK(row.size() == header_.size())
      << "row has " << row.size() << " cells, header has " << header_.size();
  rows_.push_back(std::move(row));
}

std::string Table::ToString() const {
  std::vector<size_t> width(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out;
    for (size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) {
        out.append(width[c] - row[c].size() + 2, ' ');
      }
    }
    out += "\n";
    return out;
  };
  std::string out = render_row(header_);
  std::string rule;
  for (size_t c = 0; c < header_.size(); ++c) {
    rule.append(width[c], '-');
    if (c + 1 < header_.size()) rule.append(2, ' ');
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string Table::ToCsv() const {
  auto render = [](const std::vector<std::string>& row) {
    std::string out;
    for (size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) out += ",";
    }
    out += "\n";
    return out;
  };
  std::string out = render(header_);
  for (const auto& row : rows_) out += render(row);
  return out;
}

std::string FormatCount(int64_t value) {
  char buf[32];
  const double v = static_cast<double>(value);
  if (value >= 1000000000) {
    std::snprintf(buf, sizeof(buf), "%.1fG", v / 1e9);
  } else if (value >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%.1fM", v / 1e6);
  } else if (value >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.1fk", v / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  }
  return buf;
}

std::string FormatDouble(double value, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

double GeometricMean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    if (v <= 0.0) return 0.0;
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double ArithmeticMean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

}  // namespace metrics
}  // namespace spnet
